//! Sparse multivariate polynomials with exact rational coefficients.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

use polyinv_arith::Rational;

use crate::monomial::{Monomial, VarId};

/// A sparse multivariate polynomial `Σ cᵢ·mᵢ` over [`Rational`]
/// coefficients, keyed by [`Monomial`] in graded-lexicographic order.
///
/// Zero coefficients are never stored, so structural equality coincides with
/// mathematical equality.
///
/// # Example
///
/// ```
/// use polyinv_poly::{Polynomial, VarId};
/// use polyinv_arith::Rational;
///
/// let x = VarId::new(0);
/// // p(x) = x^2 - 1
/// let p = Polynomial::variable(x).pow(2) - Polynomial::constant(Rational::one());
/// assert_eq!(p.eval(|_| Rational::from_int(3)), Rational::from_int(8));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Polynomial {
    terms: BTreeMap<Monomial, Rational>,
}

/// Alias emphasising the coefficient domain in signatures that also mention
/// template polynomials.
pub type RationalPoly = Polynomial;

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial {
            terms: BTreeMap::new(),
        }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Polynomial::constant(Rational::one())
    }

    /// A constant polynomial.
    pub fn constant(value: Rational) -> Self {
        let mut terms = BTreeMap::new();
        if !value.is_zero() {
            terms.insert(Monomial::one(), value);
        }
        Polynomial { terms }
    }

    /// The polynomial consisting of a single variable.
    pub fn variable(var: VarId) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(Monomial::variable(var), Rational::one());
        Polynomial { terms }
    }

    /// A polynomial consisting of a single term `coefficient · monomial`.
    pub fn term(coefficient: Rational, monomial: Monomial) -> Self {
        let mut terms = BTreeMap::new();
        if !coefficient.is_zero() {
            terms.insert(monomial, coefficient);
        }
        Polynomial { terms }
    }

    /// Builds a polynomial from `(coefficient, monomial)` pairs.
    pub fn from_terms<I>(terms: I) -> Self
    where
        I: IntoIterator<Item = (Rational, Monomial)>,
    {
        let mut poly = Polynomial::zero();
        for (coeff, mono) in terms {
            poly.add_term(coeff, mono);
        }
        poly
    }

    /// Returns `true` if this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the polynomial is a constant (possibly zero).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
            || (self.terms.len() == 1 && self.terms.contains_key(&Monomial::one()))
    }

    /// Returns the constant value if the polynomial is constant.
    pub fn as_constant(&self) -> Option<Rational> {
        if self.terms.is_empty() {
            return Some(Rational::zero());
        }
        if self.terms.len() == 1 {
            if let Some(value) = self.terms.get(&Monomial::one()) {
                return Some(*value);
            }
        }
        None
    }

    /// The total degree of the polynomial (zero for the zero polynomial).
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// The number of (non-zero) terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The coefficient of a monomial (zero if absent).
    pub fn coefficient(&self, monomial: &Monomial) -> Rational {
        self.terms.get(monomial).copied().unwrap_or_default()
    }

    /// Iterates over the `(monomial, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &Rational)> {
        self.terms.iter()
    }

    /// The set of variables occurring in the polynomial, deduplicated and
    /// sorted.
    pub fn variables(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .terms
            .keys()
            .flat_map(|m| m.variables().collect::<Vec<_>>())
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Adds `coefficient · monomial` to the polynomial.
    pub fn add_term(&mut self, coefficient: Rational, monomial: Monomial) {
        if coefficient.is_zero() {
            return;
        }
        let entry = self.terms.entry(monomial.clone()).or_default();
        *entry += coefficient;
        if entry.is_zero() {
            self.terms.remove(&monomial);
        }
    }

    /// Multiplies the polynomial by a scalar.
    pub fn scale(&self, factor: Rational) -> Polynomial {
        if factor.is_zero() {
            return Polynomial::zero();
        }
        Polynomial {
            terms: self
                .terms
                .iter()
                .map(|(m, c)| (m.clone(), *c * factor))
                .collect(),
        }
    }

    /// Raises the polynomial to a non-negative integer power.
    pub fn pow(&self, exponent: u32) -> Polynomial {
        let mut result = Polynomial::one();
        for _ in 0..exponent {
            result = &result * self;
        }
        result
    }

    /// Evaluates the polynomial at a rational valuation.
    pub fn eval<F>(&self, mut valuation: F) -> Rational
    where
        F: FnMut(VarId) -> Rational,
    {
        let mut total = Rational::zero();
        for (monomial, coeff) in &self.terms {
            total += *coeff * monomial.eval(&mut valuation);
        }
        total
    }

    /// Evaluates the polynomial at a rational valuation, returning `None`
    /// on `i128` rational overflow. Programs iterating rational dynamics
    /// (e.g. the reinforcement-learning benchmarks) square their
    /// denominators every loop iteration, so concrete execution must be
    /// able to stop gracefully instead of panicking.
    pub fn checked_eval<F>(&self, mut valuation: F) -> Option<Rational>
    where
        F: FnMut(VarId) -> Rational,
    {
        let mut total = Rational::zero();
        for (monomial, coeff) in &self.terms {
            let value = monomial.checked_eval(&mut valuation)?;
            let term = coeff.checked_mul(&value).ok()?;
            total = total.checked_add(&term).ok()?;
        }
        Some(total)
    }

    /// Evaluates the polynomial at an `f64` valuation.
    pub fn eval_f64<F>(&self, mut valuation: F) -> f64
    where
        F: FnMut(VarId) -> f64,
    {
        let mut total = 0.0;
        for (monomial, coeff) in &self.terms {
            total += coeff.to_f64() * monomial.eval_f64(&mut valuation);
        }
        total
    }

    /// Substitutes each variable by the polynomial returned by `mapping`
    /// (variables for which `mapping` returns `None` are left untouched).
    ///
    /// This implements composition `p ∘ α` for polynomial update functions
    /// `α`, which is the core symbolic operation of Step 2.
    pub fn substitute<F>(&self, mut mapping: F) -> Polynomial
    where
        F: FnMut(VarId) -> Option<Polynomial>,
    {
        let mut result = Polynomial::zero();
        for (monomial, coeff) in &self.terms {
            let mut term_value = Polynomial::constant(*coeff);
            for (var, exp) in monomial.iter() {
                let replacement = mapping(var).unwrap_or_else(|| Polynomial::variable(var));
                term_value = &term_value * &replacement.pow(exp);
            }
            result += term_value;
        }
        result
    }

    /// Renames variables according to `mapping` (identity where `None`).
    pub fn rename<F>(&self, mut mapping: F) -> Polynomial
    where
        F: FnMut(VarId) -> Option<VarId>,
    {
        self.substitute(|v| mapping(v).map(Polynomial::variable))
    }

    /// Renders the polynomial using a variable-name resolver.
    pub fn display_with<F>(&self, mut name: F) -> String
    where
        F: FnMut(VarId) -> String,
    {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut out = String::new();
        for (index, (monomial, coeff)) in self.terms.iter().enumerate() {
            let coeff_abs = coeff.abs();
            if index == 0 {
                if coeff.is_negative() {
                    out.push('-');
                }
            } else if coeff.is_negative() {
                out.push_str(" - ");
            } else {
                out.push_str(" + ");
            }
            if monomial.is_one() {
                out.push_str(&coeff_abs.to_string());
            } else if coeff_abs.is_one() {
                out.push_str(&monomial.display_with(&mut name));
            } else {
                out.push_str(&format!(
                    "{}*{}",
                    coeff_abs,
                    monomial.display_with(&mut name)
                ));
            }
        }
        out
    }
}

impl fmt::Display for Polynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|v| v.to_string()))
    }
}

impl Add for Polynomial {
    type Output = Polynomial;
    fn add(mut self, rhs: Polynomial) -> Polynomial {
        for (monomial, coeff) in rhs.terms {
            self.add_term(coeff, monomial);
        }
        self
    }
}

impl Add for &Polynomial {
    type Output = Polynomial;
    fn add(self, rhs: &Polynomial) -> Polynomial {
        self.clone() + rhs.clone()
    }
}

impl AddAssign for Polynomial {
    fn add_assign(&mut self, rhs: Polynomial) {
        for (monomial, coeff) in rhs.terms {
            self.add_term(coeff, monomial);
        }
    }
}

impl Sub for Polynomial {
    type Output = Polynomial;
    fn sub(mut self, rhs: Polynomial) -> Polynomial {
        for (monomial, coeff) in rhs.terms {
            self.add_term(-coeff, monomial);
        }
        self
    }
}

impl Sub for &Polynomial {
    type Output = Polynomial;
    fn sub(self, rhs: &Polynomial) -> Polynomial {
        self.clone() - rhs.clone()
    }
}

impl Neg for Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        Polynomial {
            terms: self.terms.into_iter().map(|(m, c)| (m, -c)).collect(),
        }
    }
}

impl Neg for &Polynomial {
    type Output = Polynomial;
    fn neg(self) -> Polynomial {
        -self.clone()
    }
}

impl Mul for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: &Polynomial) -> Polynomial {
        let mut result = Polynomial::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                result.add_term(*ca * *cb, ma.mul(mb));
            }
        }
        result
    }
}

impl Mul for Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: Polynomial) -> Polynomial {
        &self * &rhs
    }
}

impl Mul<Rational> for &Polynomial {
    type Output = Polynomial;
    fn mul(self, rhs: Rational) -> Polynomial {
        self.scale(rhs)
    }
}

impl std::iter::Sum for Polynomial {
    fn sum<I: Iterator<Item = Polynomial>>(iter: I) -> Self {
        iter.fold(Polynomial::zero(), |acc, p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> VarId {
        VarId::new(0)
    }
    fn y() -> VarId {
        VarId::new(1)
    }

    fn int(v: i64) -> Rational {
        Rational::from_int(v)
    }

    #[test]
    fn zero_coefficients_are_not_stored() {
        let mut p = Polynomial::variable(x());
        p.add_term(int(-1), Monomial::variable(x()));
        assert!(p.is_zero());
        assert_eq!(p.num_terms(), 0);
    }

    #[test]
    fn arithmetic_identities() {
        let p = Polynomial::variable(x()) + Polynomial::constant(int(2));
        let q = Polynomial::variable(y()) - Polynomial::constant(int(1));
        let sum = &p + &q;
        assert_eq!(sum.coefficient(&Monomial::one()), int(1));
        let product = &p * &q;
        // (x+2)(y-1) = xy - x + 2y - 2
        assert_eq!(
            product.coefficient(&Monomial::from_powers(&[(x(), 1), (y(), 1)])),
            int(1)
        );
        assert_eq!(product.coefficient(&Monomial::variable(x())), int(-1));
        assert_eq!(product.coefficient(&Monomial::variable(y())), int(2));
        assert_eq!(product.coefficient(&Monomial::one()), int(-2));
    }

    #[test]
    fn pow_expands_binomial() {
        let p = (Polynomial::variable(x()) + Polynomial::constant(int(1))).pow(3);
        // (x+1)^3 = x^3 + 3x^2 + 3x + 1
        assert_eq!(p.coefficient(&Monomial::from_powers(&[(x(), 3)])), int(1));
        assert_eq!(p.coefficient(&Monomial::from_powers(&[(x(), 2)])), int(3));
        assert_eq!(p.coefficient(&Monomial::variable(x())), int(3));
        assert_eq!(p.coefficient(&Monomial::one()), int(1));
        assert_eq!(p.degree(), 3);
    }

    #[test]
    fn evaluation_matches_expansion() {
        let p = (Polynomial::variable(x()) - Polynomial::variable(y())).pow(2);
        let value = p.eval(|v| if v == x() { int(5) } else { int(2) });
        assert_eq!(value, int(9));
    }

    #[test]
    fn substitution_composes() {
        // p = x^2 + y, substitute x := y + 1 -> (y+1)^2 + y = y^2 + 3y + 1
        let p = Polynomial::variable(x()).pow(2) + Polynomial::variable(y());
        let substituted = p.substitute(|v| {
            if v == x() {
                Some(Polynomial::variable(y()) + Polynomial::constant(int(1)))
            } else {
                None
            }
        });
        assert_eq!(
            substituted.coefficient(&Monomial::from_powers(&[(y(), 2)])),
            int(1)
        );
        assert_eq!(substituted.coefficient(&Monomial::variable(y())), int(3));
        assert_eq!(substituted.coefficient(&Monomial::one()), int(1));
    }

    #[test]
    fn rename_swaps_variables() {
        let p = Polynomial::variable(x()) + Polynomial::variable(y()).pow(2);
        let renamed = p.rename(|v| if v == y() { Some(x()) } else { Some(y()) });
        assert_eq!(renamed.coefficient(&Monomial::variable(y())), int(1));
        assert_eq!(
            renamed.coefficient(&Monomial::from_powers(&[(x(), 2)])),
            int(1)
        );
    }

    #[test]
    fn constant_detection() {
        assert!(Polynomial::zero().is_constant());
        assert_eq!(Polynomial::zero().as_constant(), Some(Rational::zero()));
        assert_eq!(Polynomial::constant(int(4)).as_constant(), Some(int(4)));
        assert_eq!(Polynomial::variable(x()).as_constant(), None);
    }

    #[test]
    fn display_is_readable() {
        let p = Polynomial::variable(x()).pow(2).scale(int(-2))
            + Polynomial::variable(y())
            + Polynomial::constant(int(1));
        let text = p.display_with(|v| if v == x() { "a".into() } else { "b".into() });
        assert_eq!(text, "1 + b - 2*a^2");
        assert_eq!(Polynomial::zero().to_string(), "0");
    }

    #[test]
    fn variables_are_collected() {
        let p = Polynomial::variable(x()) * Polynomial::variable(y())
            + Polynomial::variable(VarId::new(4));
        assert_eq!(p.variables(), vec![x(), y(), VarId::new(4)]);
    }
}
