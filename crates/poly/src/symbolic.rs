//! Affine and quadratic expressions over *unknowns*, and template
//! polynomials.
//!
//! The paper's algorithms introduce several families of unknown real
//! variables: the template coefficients `s_{ℓ,i,j}` (Step 1), the multiplier
//! coefficients `t_{i,j}` and the positivity witnesses `ε` (Step 3), and the
//! Cholesky entries `l_{i,j}` of the sum-of-squares encoding (Section 3.1).
//! During constraint generation we manipulate polynomials *in the program
//! variables* whose coefficients are affine ([`LinExpr`]) or quadratic
//! ([`QuadExpr`]) expressions *in those unknowns*. Matching coefficients of
//! the Putinar identity `g = ε + h₀ + Σ hᵢ·gᵢ` then directly yields the
//! quadratic constraints over the unknowns that form the QCLP.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Neg, Sub};

use polyinv_arith::Rational;

use crate::monomial::{Monomial, VarId};
use crate::polynomial::Polynomial;

/// An opaque identifier for an unknown (template coefficient, multiplier
/// coefficient, Cholesky entry or positivity witness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnknownId(usize);

impl UnknownId {
    /// Creates an unknown id from a raw index.
    pub fn new(index: usize) -> Self {
        UnknownId(index)
    }

    /// The raw index of the unknown.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for UnknownId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// An affine expression `c + Σ aᵢ·uᵢ` over unknowns `uᵢ`.
///
/// # Example
///
/// ```
/// use polyinv_poly::{LinExpr, UnknownId};
/// use polyinv_arith::Rational;
///
/// let u = UnknownId::new(0);
/// let e = LinExpr::unknown(u).scale(Rational::from_int(2)) + LinExpr::constant(Rational::one());
/// assert_eq!(e.eval(|_| 3.0), 7.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    constant: Rational,
    /// Sorted by unknown id, non-zero coefficients only.
    terms: Vec<(UnknownId, Rational)>,
}

impl LinExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(value: Rational) -> Self {
        LinExpr {
            constant: value,
            terms: Vec::new(),
        }
    }

    /// The expression consisting of a single unknown with coefficient one.
    pub fn unknown(id: UnknownId) -> Self {
        LinExpr {
            constant: Rational::zero(),
            terms: vec![(id, Rational::one())],
        }
    }

    /// Returns `true` if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant.is_zero() && self.terms.is_empty()
    }

    /// Returns `true` if the expression has no unknowns.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant part of the expression.
    pub fn constant_part(&self) -> Rational {
        self.constant
    }

    /// The linear terms `(unknown, coefficient)`, sorted by unknown.
    pub fn terms(&self) -> &[(UnknownId, Rational)] {
        &self.terms
    }

    /// Iterates over the unknowns referenced by the expression.
    pub fn unknowns(&self) -> impl Iterator<Item = UnknownId> + '_ {
        self.terms.iter().map(|&(u, _)| u)
    }

    fn add_term(&mut self, id: UnknownId, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        match self.terms.binary_search_by_key(&id, |&(u, _)| u) {
            Ok(pos) => {
                self.terms[pos].1 += coeff;
                if self.terms[pos].1.is_zero() {
                    self.terms.remove(pos);
                }
            }
            Err(pos) => self.terms.insert(pos, (id, coeff)),
        }
    }

    /// Adds another expression in place (no allocation when the unknown
    /// sets already overlap).
    pub fn add_expr(&mut self, other: &LinExpr) {
        self.constant += other.constant;
        for &(u, c) in &other.terms {
            self.add_term(u, c);
        }
    }

    /// Adds `factor · other` in place.
    pub fn add_scaled(&mut self, other: &LinExpr, factor: Rational) {
        if factor.is_zero() {
            return;
        }
        self.constant += other.constant * factor;
        for &(u, c) in &other.terms {
            self.add_term(u, c * factor);
        }
    }

    /// Multiplies the expression by a rational constant.
    pub fn scale(&self, factor: Rational) -> LinExpr {
        if factor.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            constant: self.constant * factor,
            terms: self.terms.iter().map(|&(u, c)| (u, c * factor)).collect(),
        }
    }

    /// Multiplies two affine expressions, producing a quadratic expression.
    pub fn mul(&self, other: &LinExpr) -> QuadExpr {
        let mut result = QuadExpr::constant(self.constant * other.constant);
        for &(u, c) in &other.terms {
            result.add_linear(u, self.constant * c);
        }
        for &(u, c) in &self.terms {
            result.add_linear(u, other.constant * c);
        }
        for &(ua, ca) in &self.terms {
            for &(ub, cb) in &other.terms {
                result.add_quadratic(ua, ub, ca * cb);
            }
        }
        result
    }

    /// Evaluates the expression under an `f64` assignment of the unknowns.
    pub fn eval<F>(&self, mut assignment: F) -> f64
    where
        F: FnMut(UnknownId) -> f64,
    {
        let mut total = self.constant.to_f64();
        for &(u, c) in &self.terms {
            total += c.to_f64() * assignment(u);
        }
        total
    }

    /// Evaluates the expression under an exact rational assignment.
    pub fn eval_rational<F>(&self, mut assignment: F) -> Rational
    where
        F: FnMut(UnknownId) -> Rational,
    {
        let mut total = self.constant;
        for &(u, c) in &self.terms {
            total += c * assignment(u);
        }
        total
    }

    /// Renders the expression with an unknown-name resolver.
    pub fn display_with<F>(&self, mut name: F) -> String
    where
        F: FnMut(UnknownId) -> String,
    {
        let mut parts = Vec::new();
        if !self.constant.is_zero() || self.terms.is_empty() {
            parts.push(self.constant.to_string());
        }
        for &(u, c) in &self.terms {
            if c.is_one() {
                parts.push(name(u));
            } else {
                parts.push(format!("{}*{}", c, name(u)));
            }
        }
        parts.join(" + ")
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|u| u.to_string()))
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self.constant += rhs.constant;
        for (u, c) in rhs.terms {
            self.add_term(u, c);
        }
        self
    }
}

impl Add for &LinExpr {
    type Output = LinExpr;
    fn add(self, rhs: &LinExpr) -> LinExpr {
        self.clone() + rhs.clone()
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(self) -> LinExpr {
        LinExpr {
            constant: -self.constant,
            terms: self.terms.into_iter().map(|(u, c)| (u, -c)).collect(),
        }
    }
}

/// A quadratic expression `c + Σ aᵢ·uᵢ + Σ bᵢⱼ·uᵢ·uⱼ` over unknowns.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct QuadExpr {
    constant: Rational,
    /// Sorted by unknown id.
    linear: Vec<(UnknownId, Rational)>,
    /// Sorted by the (ordered) pair of unknown ids; the pair always satisfies
    /// `first <= second`.
    quadratic: Vec<((UnknownId, UnknownId), Rational)>,
}

impl QuadExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        QuadExpr::default()
    }

    /// A constant expression.
    pub fn constant(value: Rational) -> Self {
        QuadExpr {
            constant: value,
            linear: Vec::new(),
            quadratic: Vec::new(),
        }
    }

    /// Returns `true` if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.constant.is_zero() && self.linear.is_empty() && self.quadratic.is_empty()
    }

    /// Returns `true` if the expression has no quadratic terms.
    pub fn is_affine(&self) -> bool {
        self.quadratic.is_empty()
    }

    /// The constant part.
    pub fn constant_part(&self) -> Rational {
        self.constant
    }

    /// The linear terms `(unknown, coefficient)`.
    pub fn linear_terms(&self) -> &[(UnknownId, Rational)] {
        &self.linear
    }

    /// The quadratic terms `((unknown, unknown), coefficient)` with ordered
    /// pairs.
    pub fn quadratic_terms(&self) -> &[((UnknownId, UnknownId), Rational)] {
        &self.quadratic
    }

    /// All unknowns referenced by the expression (unsorted, may repeat).
    pub fn unknowns(&self) -> impl Iterator<Item = UnknownId> + '_ {
        self.linear
            .iter()
            .map(|&(u, _)| u)
            .chain(self.quadratic.iter().flat_map(|&((a, b), _)| [a, b]))
    }

    /// Adds `coeff · u` to the expression.
    pub fn add_linear(&mut self, u: UnknownId, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        match self.linear.binary_search_by_key(&u, |&(x, _)| x) {
            Ok(pos) => {
                self.linear[pos].1 += coeff;
                if self.linear[pos].1.is_zero() {
                    self.linear.remove(pos);
                }
            }
            Err(pos) => self.linear.insert(pos, (u, coeff)),
        }
    }

    /// Adds `coeff · a·b` to the expression.
    pub fn add_quadratic(&mut self, a: UnknownId, b: UnknownId, coeff: Rational) {
        if coeff.is_zero() {
            return;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        match self.quadratic.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(pos) => {
                self.quadratic[pos].1 += coeff;
                if self.quadratic[pos].1.is_zero() {
                    self.quadratic.remove(pos);
                }
            }
            Err(pos) => self.quadratic.insert(pos, (key, coeff)),
        }
    }

    /// Adds a constant to the expression.
    pub fn add_constant(&mut self, value: Rational) {
        self.constant += value;
    }

    /// Adds another expression in place. Unlike `self + other` this neither
    /// consumes nor clones the operands — the merge the hot accumulation
    /// loops of the Putinar translation rely on.
    pub fn add_expr(&mut self, other: &QuadExpr) {
        self.constant += other.constant;
        for &(u, c) in &other.linear {
            self.add_linear(u, c);
        }
        for &((a, b), c) in &other.quadratic {
            self.add_quadratic(a, b, c);
        }
    }

    /// Adds `factor · other` in place.
    pub fn add_scaled(&mut self, other: &QuadExpr, factor: Rational) {
        if factor.is_zero() {
            return;
        }
        self.constant += other.constant * factor;
        for &(u, c) in &other.linear {
            self.add_linear(u, c * factor);
        }
        for &((a, b), c) in &other.quadratic {
            self.add_quadratic(a, b, c * factor);
        }
    }

    /// Subtracts another expression in place.
    pub fn sub_expr(&mut self, other: &QuadExpr) {
        self.add_scaled(other, Rational::from_int(-1));
    }

    /// Negates the expression in place (no allocation).
    pub fn negate_in_place(&mut self) {
        self.constant = -self.constant;
        for (_, c) in &mut self.linear {
            *c = -*c;
        }
        for (_, c) in &mut self.quadratic {
            *c = -*c;
        }
    }

    /// Adds an affine expression in place.
    pub fn add_lin(&mut self, lin: &LinExpr) {
        self.constant += lin.constant_part();
        for &(u, c) in lin.terms() {
            self.add_linear(u, c);
        }
    }

    /// Multiplies the expression by a rational constant.
    pub fn scale(&self, factor: Rational) -> QuadExpr {
        if factor.is_zero() {
            return QuadExpr::zero();
        }
        QuadExpr {
            constant: self.constant * factor,
            linear: self.linear.iter().map(|&(u, c)| (u, c * factor)).collect(),
            quadratic: self
                .quadratic
                .iter()
                .map(|&(k, c)| (k, c * factor))
                .collect(),
        }
    }

    /// Evaluates the expression under an `f64` assignment of the unknowns.
    pub fn eval<F>(&self, mut assignment: F) -> f64
    where
        F: FnMut(UnknownId) -> f64,
    {
        let mut total = self.constant.to_f64();
        for &(u, c) in &self.linear {
            total += c.to_f64() * assignment(u);
        }
        for &((a, b), c) in &self.quadratic {
            total += c.to_f64() * assignment(a) * assignment(b);
        }
        total
    }

    /// Evaluates the expression under an exact rational assignment.
    pub fn eval_rational<F>(&self, mut assignment: F) -> Rational
    where
        F: FnMut(UnknownId) -> Rational,
    {
        let mut total = self.constant;
        for &(u, c) in &self.linear {
            total += c * assignment(u);
        }
        for &((a, b), c) in &self.quadratic {
            total += c * assignment(a) * assignment(b);
        }
        total
    }

    /// Renders the expression with an unknown-name resolver.
    pub fn display_with<F>(&self, mut name: F) -> String
    where
        F: FnMut(UnknownId) -> String,
    {
        let mut parts = Vec::new();
        if !self.constant.is_zero() {
            parts.push(self.constant.to_string());
        }
        for &(u, c) in &self.linear {
            if c.is_one() {
                parts.push(name(u));
            } else {
                parts.push(format!("{}*{}", c, name(u)));
            }
        }
        for &((a, b), c) in &self.quadratic {
            let pair = if a == b {
                format!("{}^2", name(a))
            } else {
                format!("{}*{}", name(a), name(b))
            };
            if c.is_one() {
                parts.push(pair);
            } else {
                parts.push(format!("{c}*{pair}"));
            }
        }
        if parts.is_empty() {
            "0".to_string()
        } else {
            parts.join(" + ")
        }
    }
}

impl fmt::Display for QuadExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|u| u.to_string()))
    }
}

impl From<LinExpr> for QuadExpr {
    fn from(lin: LinExpr) -> Self {
        let mut q = QuadExpr::constant(lin.constant);
        for (u, c) in lin.terms {
            q.add_linear(u, c);
        }
        q
    }
}

impl Add for QuadExpr {
    type Output = QuadExpr;
    fn add(mut self, rhs: QuadExpr) -> QuadExpr {
        self.constant += rhs.constant;
        for (u, c) in rhs.linear {
            self.add_linear(u, c);
        }
        for ((a, b), c) in rhs.quadratic {
            self.add_quadratic(a, b, c);
        }
        self
    }
}

impl Sub for QuadExpr {
    type Output = QuadExpr;
    fn sub(self, rhs: QuadExpr) -> QuadExpr {
        self + rhs.scale(Rational::from_int(-1))
    }
}

impl Neg for QuadExpr {
    type Output = QuadExpr;
    fn neg(self) -> QuadExpr {
        self.scale(Rational::from_int(-1))
    }
}

/// A polynomial in the program variables whose coefficients are affine
/// expressions over unknowns — the *templates* of Step 1.
///
/// # Example
///
/// ```
/// use polyinv_poly::{LinExpr, Monomial, TemplatePoly, UnknownId, VarId};
/// use polyinv_arith::Rational;
///
/// let x = VarId::new(0);
/// let s = UnknownId::new(0);
/// // template: s * x + 1
/// let mut t = TemplatePoly::zero();
/// t.add_term(LinExpr::unknown(s), Monomial::variable(x));
/// t.add_term(LinExpr::constant(Rational::one()), Monomial::one());
/// let instantiated = t.instantiate(|_| Rational::from_int(5));
/// assert_eq!(instantiated.eval(|_| Rational::from_int(2)), Rational::from_int(11));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TemplatePoly {
    terms: BTreeMap<Monomial, LinExpr>,
}

impl TemplatePoly {
    /// The zero template polynomial.
    pub fn zero() -> Self {
        TemplatePoly {
            terms: BTreeMap::new(),
        }
    }

    /// Lifts a concrete polynomial to a template polynomial with constant
    /// coefficients.
    pub fn from_polynomial(poly: &Polynomial) -> Self {
        let mut result = TemplatePoly::zero();
        for (monomial, coeff) in poly.iter() {
            result.add_term(LinExpr::constant(*coeff), monomial.clone());
        }
        result
    }

    /// Returns `true` if the template has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The total degree in the program variables.
    pub fn degree(&self) -> u32 {
        self.terms.keys().map(Monomial::degree).max().unwrap_or(0)
    }

    /// The number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The coefficient of a monomial (zero if absent).
    pub fn coefficient(&self, monomial: &Monomial) -> LinExpr {
        self.terms.get(monomial).cloned().unwrap_or_default()
    }

    /// Iterates over the `(monomial, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &LinExpr)> {
        self.terms.iter()
    }

    /// The program variables occurring in the template.
    pub fn variables(&self) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .terms
            .keys()
            .flat_map(|m| m.variables().collect::<Vec<_>>())
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// The unknowns occurring in the coefficients.
    pub fn unknowns(&self) -> Vec<UnknownId> {
        let mut ids: Vec<UnknownId> = self
            .terms
            .values()
            .flat_map(|c| c.unknowns().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids.dedup();
        ids
    }

    /// Adds `coefficient · monomial` to the template.
    pub fn add_term(&mut self, coefficient: LinExpr, monomial: Monomial) {
        if coefficient.is_zero() {
            return;
        }
        let entry = self.terms.entry(monomial.clone()).or_default();
        let sum = entry.clone() + coefficient;
        if sum.is_zero() {
            self.terms.remove(&monomial);
        } else {
            *entry = sum;
        }
    }

    /// Adds another template polynomial.
    pub fn add(&self, other: &TemplatePoly) -> TemplatePoly {
        let mut result = self.clone();
        for (monomial, coeff) in &other.terms {
            result.add_term(coeff.clone(), monomial.clone());
        }
        result
    }

    /// Subtracts another template polynomial.
    pub fn sub(&self, other: &TemplatePoly) -> TemplatePoly {
        let mut result = self.clone();
        for (monomial, coeff) in &other.terms {
            result.add_term(-coeff.clone(), monomial.clone());
        }
        result
    }

    /// Multiplies the template by a concrete polynomial in the program
    /// variables.
    pub fn mul_polynomial(&self, poly: &Polynomial) -> TemplatePoly {
        let mut result = TemplatePoly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in poly.iter() {
                result.add_term(ca.scale(*cb), ma.mul(mb));
            }
        }
        result
    }

    /// Multiplies two template polynomials, producing a polynomial with
    /// quadratic coefficients. This is the operation `hᵢ · gᵢ` of the
    /// Putinar identity.
    pub fn mul_template(&self, other: &TemplatePoly) -> QuadraticPoly {
        let mut result = QuadraticPoly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                result.add_term(ca.mul(cb), ma.mul(mb));
            }
        }
        result
    }

    /// Substitutes program variables by concrete polynomials (identity where
    /// `None`), keeping the symbolic coefficients. Implements `η(ℓ′) ∘ α`.
    pub fn substitute<F>(&self, mut mapping: F) -> TemplatePoly
    where
        F: FnMut(VarId) -> Option<Polynomial>,
    {
        let mut result = TemplatePoly::zero();
        for (monomial, coeff) in &self.terms {
            // Expand the monomial under the substitution into a concrete
            // polynomial, then scale by the symbolic coefficient.
            let mut expansion = Polynomial::one();
            for (var, exp) in monomial.iter() {
                let replacement = mapping(var).unwrap_or_else(|| Polynomial::variable(var));
                expansion = &expansion * &replacement.pow(exp);
            }
            for (mono, scalar) in expansion.iter() {
                result.add_term(coeff.scale(*scalar), mono.clone());
            }
        }
        result
    }

    /// Instantiates the template by assigning rational values to unknowns.
    pub fn instantiate<F>(&self, mut assignment: F) -> Polynomial
    where
        F: FnMut(UnknownId) -> Rational,
    {
        let mut result = Polynomial::zero();
        for (monomial, coeff) in &self.terms {
            result.add_term(coeff.eval_rational(&mut assignment), monomial.clone());
        }
        result
    }

    /// Converts the template into a [`QuadraticPoly`] with affine
    /// coefficients (used for coefficient matching against products).
    pub fn to_quadratic(&self) -> QuadraticPoly {
        let mut result = QuadraticPoly::zero();
        for (monomial, coeff) in &self.terms {
            result.add_term(coeff.clone().into(), monomial.clone());
        }
        result
    }

    /// Renders the template with variable and unknown name resolvers.
    pub fn display_with<FV, FU>(&self, mut var_name: FV, mut unknown_name: FU) -> String
    where
        FV: FnMut(VarId) -> String,
        FU: FnMut(UnknownId) -> String,
    {
        if self.terms.is_empty() {
            return "0".to_string();
        }
        let mut parts = Vec::new();
        for (monomial, coeff) in &self.terms {
            let coeff_text = coeff.display_with(&mut unknown_name);
            if monomial.is_one() {
                parts.push(format!("({coeff_text})"));
            } else {
                parts.push(format!(
                    "({coeff_text})*{}",
                    monomial.display_with(&mut var_name)
                ));
            }
        }
        parts.join(" + ")
    }
}

impl fmt::Display for TemplatePoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            self.display_with(|v| v.to_string(), |u| u.to_string())
        )
    }
}

/// A polynomial in the program variables whose coefficients are quadratic
/// expressions over unknowns — the result of multiplying two templates.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QuadraticPoly {
    terms: BTreeMap<Monomial, QuadExpr>,
}

impl QuadraticPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        QuadraticPoly {
            terms: BTreeMap::new(),
        }
    }

    /// Returns `true` if there are no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The coefficient of a monomial (zero if absent).
    pub fn coefficient(&self, monomial: &Monomial) -> QuadExpr {
        self.terms.get(monomial).cloned().unwrap_or_default()
    }

    /// Iterates over the `(monomial, coefficient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Monomial, &QuadExpr)> {
        self.terms.iter()
    }

    /// The monomials with a non-zero coefficient.
    pub fn monomials(&self) -> impl Iterator<Item = &Monomial> {
        self.terms.keys()
    }

    /// Adds `coefficient · monomial`.
    pub fn add_term(&mut self, coefficient: QuadExpr, monomial: Monomial) {
        if coefficient.is_zero() {
            return;
        }
        let entry = self.terms.entry(monomial.clone()).or_default();
        let sum = entry.clone() + coefficient;
        if sum.is_zero() {
            self.terms.remove(&monomial);
        } else {
            *entry = sum;
        }
    }

    /// Adds another quadratic polynomial.
    pub fn add(&self, other: &QuadraticPoly) -> QuadraticPoly {
        let mut result = self.clone();
        for (monomial, coeff) in &other.terms {
            result.add_term(coeff.clone(), monomial.clone());
        }
        result
    }

    /// Subtracts another quadratic polynomial.
    pub fn sub(&self, other: &QuadraticPoly) -> QuadraticPoly {
        let mut result = self.clone();
        for (monomial, coeff) in &other.terms {
            result.add_term(-coeff.clone(), monomial.clone());
        }
        result
    }

    /// Evaluates all coefficients under an `f64` assignment, producing the
    /// map `monomial ↦ value` (used by tests to check the Putinar identity
    /// numerically).
    pub fn eval_coefficients<F>(&self, mut assignment: F) -> BTreeMap<Monomial, f64>
    where
        F: FnMut(UnknownId) -> f64,
    {
        self.terms
            .iter()
            .map(|(m, c)| (m.clone(), c.eval(&mut assignment)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(i: usize) -> UnknownId {
        UnknownId::new(i)
    }
    fn v(i: usize) -> VarId {
        VarId::new(i)
    }
    fn int(x: i64) -> Rational {
        Rational::from_int(x)
    }

    #[test]
    fn linexpr_arithmetic() {
        let a = LinExpr::unknown(u(0)).scale(int(2)) + LinExpr::constant(int(3));
        let b = LinExpr::unknown(u(1)) - LinExpr::constant(int(1));
        let sum = a.clone() + b.clone();
        assert_eq!(sum.constant_part(), int(2));
        assert_eq!(sum.terms().len(), 2);
        let cancelled = a.clone() - a.clone();
        assert!(cancelled.is_zero());
        assert_eq!(b.eval(|_| 4.0), 3.0);
    }

    #[test]
    fn linexpr_product_is_quadratic() {
        // (2u0 + 3)(u1 - 1) = 2 u0 u1 - 2 u0 + 3 u1 - 3
        let a = LinExpr::unknown(u(0)).scale(int(2)) + LinExpr::constant(int(3));
        let b = LinExpr::unknown(u(1)) - LinExpr::constant(int(1));
        let q = a.mul(&b);
        assert_eq!(q.constant_part(), int(-3));
        assert_eq!(q.linear_terms(), &[(u(0), int(-2)), (u(1), int(3))]);
        assert_eq!(q.quadratic_terms(), &[((u(0), u(1)), int(2))]);
        // Evaluation agrees with direct computation.
        let value = q.eval(|x| if x == u(0) { 2.0 } else { 5.0 });
        assert_eq!(value, (2.0 * 2.0 + 3.0) * (5.0 - 1.0));
    }

    #[test]
    fn quadexpr_square_terms_merge() {
        let a = LinExpr::unknown(u(0)) + LinExpr::unknown(u(1));
        let square = a.mul(&a);
        // (u0+u1)^2 = u0^2 + 2 u0 u1 + u1^2
        assert_eq!(square.quadratic_terms().len(), 3);
        assert_eq!(
            square
                .quadratic_terms()
                .iter()
                .find(|&&(k, _)| k == (u(0), u(1)))
                .unwrap()
                .1,
            int(2)
        );
    }

    #[test]
    fn template_substitution_expands_monomials() {
        // template: s * x^2; substitute x := y + 1.
        let mut template = TemplatePoly::zero();
        template.add_term(LinExpr::unknown(u(0)), Monomial::from_powers(&[(v(0), 2)]));
        let substituted = template.substitute(|var| {
            if var == v(0) {
                Some(Polynomial::variable(v(1)) + Polynomial::constant(int(1)))
            } else {
                None
            }
        });
        // Result: s*y^2 + 2s*y + s.
        assert_eq!(substituted.num_terms(), 3);
        let coeff_y = substituted.coefficient(&Monomial::variable(v(1)));
        assert_eq!(coeff_y.terms(), &[(u(0), int(2))]);
    }

    #[test]
    fn template_product_matches_numeric_evaluation() {
        // h = t0 + t1*x, g = s0 + s1*x. Their product's coefficients must be
        // consistent with numeric evaluation for arbitrary assignments.
        let mut h = TemplatePoly::zero();
        h.add_term(LinExpr::unknown(u(0)), Monomial::one());
        h.add_term(LinExpr::unknown(u(1)), Monomial::variable(v(0)));
        let mut g = TemplatePoly::zero();
        g.add_term(LinExpr::unknown(u(2)), Monomial::one());
        g.add_term(LinExpr::unknown(u(3)), Monomial::variable(v(0)));
        let product = h.mul_template(&g);
        let assignment = |x: UnknownId| (x.index() + 1) as f64;
        let coeffs = product.eval_coefficients(assignment);
        // Instantiate h and g numerically and multiply as plain polynomials.
        let hn = h.instantiate(|x| int((x.index() + 1) as i64));
        let gn = g.instantiate(|x| int((x.index() + 1) as i64));
        let direct = &hn * &gn;
        for (monomial, value) in coeffs {
            assert!((direct.coefficient(&monomial).to_f64() - value).abs() < 1e-9);
        }
    }

    #[test]
    fn instantiation_produces_concrete_polynomial() {
        let mut template = TemplatePoly::zero();
        template.add_term(LinExpr::unknown(u(0)), Monomial::variable(v(0)));
        template.add_term(LinExpr::constant(int(1)), Monomial::one());
        let poly = template.instantiate(|_| int(7));
        assert_eq!(poly.coefficient(&Monomial::variable(v(0))), int(7));
        assert_eq!(poly.coefficient(&Monomial::one()), int(1));
    }

    #[test]
    fn quadratic_poly_subtraction_cancels() {
        let mut template = TemplatePoly::zero();
        template.add_term(LinExpr::unknown(u(0)), Monomial::variable(v(0)));
        let q = template.to_quadratic();
        let diff = q.sub(&q);
        assert!(diff.is_zero());
    }

    #[test]
    fn display_is_informative() {
        let mut template = TemplatePoly::zero();
        template.add_term(LinExpr::unknown(u(0)), Monomial::variable(v(0)));
        let text = template.display_with(|_| "n".to_string(), |_| "s".to_string());
        assert_eq!(text, "(s)*n");
    }
}
