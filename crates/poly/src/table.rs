//! Hash-consed monomials: the [`MonomialTable`] arena and [`MonoId`]
//! handles.
//!
//! Constraint generation (Steps 1–3 of the paper) spends almost all of its
//! time in symbolic polynomial arithmetic, and the dominant costs of the
//! original representation were (a) cloning owned [`Monomial`] keys on every
//! map insertion and (b) comparing full exponent vectors on every lookup.
//! The table removes both: each distinct monomial is stored once and handed
//! out as a dense `u32` id, products of ids are memoized, and the monomial
//! bases `M_d` / `M_ϒ` used by the templates and the Putinar multipliers are
//! computed once per `(variables, degree)` pair and cached.
//!
//! One table serves one synthesis run (it is owned by the run's
//! `SynthesisContext` and travels into the `GeneratedSystem`), so ids are
//! meaningful only relative to their table. Raw id order is allocation
//! order; the canonical graded-lexicographic order of the public
//! [`Polynomial`](crate::Polynomial) API is recovered through
//! [`MonomialTable::grlex_cmp`] when interned data is converted back.

use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::monomial::{Monomial, VarId};

/// A fast multiply-xor hasher (FxHash) for the table's internal maps. The
/// keys are small ids or short exponent vectors, where SipHash's
/// flooding resistance buys nothing and its per-byte cost dominates the
/// memoized lookups on the reduction hot path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.add(u64::from(value));
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        self.add(value);
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.add(value as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildFxHasher>;

/// A dense handle for a monomial interned in a [`MonomialTable`].
///
/// Ids are only comparable within the table that produced them; the derived
/// `Ord` is allocation order, not the graded-lexicographic term order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonoId(u32);

impl MonoId {
    /// The id of the constant monomial `1` (pre-interned in every table).
    pub const ONE: MonoId = MonoId(0);

    /// The raw index of the id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consing arena for monomials with memoized products and degree
/// bases.
#[derive(Debug, Clone, Default)]
pub struct MonomialTable {
    /// id → monomial, in allocation order.
    monos: Vec<Monomial>,
    /// id → total degree (cached; read on every basis/degree query).
    degrees: Vec<u32>,
    /// monomial → id (the hash-consing index).
    index: FxHashMap<Monomial, u32>,
    /// Memoized products, keyed by the ordered id pair.
    products: FxHashMap<(u32, u32), u32>,
    /// Memoized bases `M_d` keyed by `(variables, degree)`.
    bases: HashMap<(Vec<VarId>, u32), Vec<MonoId>>,
}

impl MonomialTable {
    /// An empty table with the constant monomial pre-interned as
    /// [`MonoId::ONE`].
    pub fn new() -> Self {
        let mut table = MonomialTable::default();
        let one = table.intern(Monomial::one());
        debug_assert_eq!(one, MonoId::ONE);
        table
    }

    /// The number of distinct monomials interned so far.
    pub fn len(&self) -> usize {
        self.monos.len()
    }

    /// `true` when nothing beyond the constant monomial was interned.
    pub fn is_empty(&self) -> bool {
        self.monos.len() <= 1
    }

    /// Interns a monomial, returning its stable id.
    pub fn intern(&mut self, monomial: Monomial) -> MonoId {
        if let Some(&id) = self.index.get(&monomial) {
            return MonoId(id);
        }
        let id = self.monos.len() as u32;
        self.degrees.push(monomial.degree());
        self.index.insert(monomial.clone(), id);
        self.monos.push(monomial);
        MonoId(id)
    }

    /// Interns the monomial of a single variable.
    pub fn var(&mut self, var: VarId) -> MonoId {
        self.intern(Monomial::variable(var))
    }

    /// The monomial behind an id.
    pub fn monomial(&self, id: MonoId) -> &Monomial {
        &self.monos[id.index()]
    }

    /// The total degree of an interned monomial (cached).
    pub fn degree(&self, id: MonoId) -> u32 {
        self.degrees[id.index()]
    }

    /// The memoized product of two interned monomials.
    pub fn mul(&mut self, a: MonoId, b: MonoId) -> MonoId {
        if a == MonoId::ONE {
            return b;
        }
        if b == MonoId::ONE {
            return a;
        }
        let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
        if let Some(&id) = self.products.get(&key) {
            return MonoId(id);
        }
        let product = self.monos[a.index()].mul(&self.monos[b.index()]);
        let id = self.intern(product);
        self.products.insert(key, id.0);
        id
    }

    /// Graded-lexicographic comparison of two interned monomials — the term
    /// order of the public [`Polynomial`](crate::Polynomial) API.
    pub fn grlex_cmp(&self, a: MonoId, b: MonoId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        self.monos[a.index()].cmp(&self.monos[b.index()])
    }

    /// Sorts a term list into canonical graded-lexicographic order.
    pub fn sort_terms<C>(&self, terms: &mut [(MonoId, C)]) {
        terms.sort_by(|(a, _), (b, _)| self.grlex_cmp(*a, *b));
    }

    /// The basis `M_d` of all monomials of total degree at most `degree`
    /// over `vars`, interned and in graded-lexicographic order. Memoized per
    /// `(vars, degree)` pair, which is what makes the per-pair multiplier
    /// bases of Step 3 cheap: most constraint pairs of a program share their
    /// variable scope.
    pub fn basis_up_to_degree(&mut self, vars: &[VarId], degree: u32) -> Vec<MonoId> {
        let key = (vars.to_vec(), degree);
        if let Some(basis) = self.bases.get(&key) {
            return basis.clone();
        }
        let basis: Vec<MonoId> = Monomial::all_up_to_degree(vars, degree)
            .into_iter()
            .map(|m| self.intern(m))
            .collect();
        self.bases.insert(key, basis.clone());
        basis
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut table = MonomialTable::new();
        let x = table.var(v(0));
        let y = table.var(v(1));
        assert_eq!(table.var(v(0)), x);
        assert_ne!(x, y);
        assert_eq!(table.len(), 3); // 1, x, y
        assert_eq!(table.intern(Monomial::one()), MonoId::ONE);
        assert_eq!(table.degree(MonoId::ONE), 0);
        assert_eq!(table.degree(x), 1);
    }

    #[test]
    fn products_are_memoized_and_commutative() {
        let mut table = MonomialTable::new();
        let x = table.var(v(0));
        let y = table.var(v(1));
        let xy = table.mul(x, y);
        assert_eq!(table.mul(y, x), xy);
        assert_eq!(table.monomial(xy).degree(), 2);
        assert_eq!(table.mul(xy, MonoId::ONE), xy);
        let before = table.len();
        let _ = table.mul(x, y);
        assert_eq!(table.len(), before);
    }

    #[test]
    fn bases_are_cached_and_grlex_sorted() {
        let mut table = MonomialTable::new();
        let vars = [v(0), v(1), v(2)];
        let basis = table.basis_up_to_degree(&vars, 2);
        assert_eq!(basis.len(), 10); // C(5, 2)
        assert_eq!(basis[0], MonoId::ONE);
        for pair in basis.windows(2) {
            assert_eq!(table.grlex_cmp(pair[0], pair[1]), Ordering::Less);
        }
        // Second call hits the memo and returns the same ids.
        assert_eq!(table.basis_up_to_degree(&vars, 2), basis);
    }

    #[test]
    fn grlex_cmp_matches_monomial_ordering() {
        let mut table = MonomialTable::new();
        let low = table.var(v(5));
        let high = table.intern(Monomial::from_powers(&[(v(0), 2)]));
        assert_eq!(table.grlex_cmp(low, high), Ordering::Less);
        assert_eq!(table.grlex_cmp(high, low), Ordering::Greater);
        assert_eq!(table.grlex_cmp(low, low), Ordering::Equal);
    }
}
