//! Interned sparse polynomial representations.
//!
//! These are the hot-path counterparts of [`Polynomial`], [`TemplatePoly`]
//! and [`QuadraticPoly`]: term lists keyed by [`MonoId`] instead of owned
//! [`Monomial`](crate::Monomial) keys, sorted by raw id. All products go
//! through the memoizing [`MonomialTable`], all accumulation is in place
//! (binary-search insert + coefficient merge) — no `BTreeMap` rebuilds, no
//! monomial clones, no whole-coefficient clones per insertion.
//!
//! Raw-id order is *not* the graded-lexicographic term order of the public
//! API; conversions back to the `Monomial`-keyed types restore the canonical
//! order, so display strings and downstream consumers are unaffected.

use polyinv_arith::Rational;

use crate::monomial::VarId;
use crate::polynomial::Polynomial;
use crate::symbolic::{LinExpr, QuadExpr, QuadraticPoly, TemplatePoly};
use crate::table::{FxHashMap, MonoId, MonomialTable};

/// Merges into the sorted term list at `id`: `hit` updates an existing
/// coefficient in place, `miss` produces the fresh one, and entries that
/// end up zero are dropped. Every sorted-`Vec` representation in this
/// module funnels through here so the merge semantics cannot diverge.
fn merge_slot<C, Z, H, M>(terms: &mut Vec<(MonoId, C)>, id: MonoId, is_zero: Z, hit: H, miss: M)
where
    Z: Fn(&C) -> bool,
    H: FnOnce(&mut C),
    M: FnOnce() -> C,
{
    match terms.binary_search_by_key(&id, |&(m, _)| m) {
        Ok(pos) => {
            hit(&mut terms[pos].1);
            if is_zero(&terms[pos].1) {
                terms.remove(pos);
            }
        }
        Err(pos) => {
            let value = miss();
            if !is_zero(&value) {
                terms.insert(pos, (id, value));
            }
        }
    }
}

/// Merges an owned `coefficient` into the term list at `id` (the owned-move
/// sibling of [`merge_slot`]; the value moves into exactly one branch).
fn merge_term<C, Z, M>(terms: &mut Vec<(MonoId, C)>, id: MonoId, coefficient: C, is_zero: Z, add: M)
where
    Z: Fn(&C) -> bool,
    M: FnOnce(&mut C, C),
{
    if is_zero(&coefficient) {
        return;
    }
    match terms.binary_search_by_key(&id, |&(m, _)| m) {
        Ok(pos) => {
            add(&mut terms[pos].1, coefficient);
            if is_zero(&terms[pos].1) {
                terms.remove(pos);
            }
        }
        Err(pos) => terms.insert(pos, (id, coefficient)),
    }
}

/// A concrete polynomial with interned monomials: `Σ cᵢ·mᵢ` over
/// [`Rational`] coefficients, keyed by [`MonoId`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntPoly {
    terms: Vec<(MonoId, Rational)>,
}

impl IntPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        IntPoly::default()
    }

    /// The polynomial of a single variable.
    pub fn variable(var: VarId, table: &mut MonomialTable) -> Self {
        IntPoly {
            terms: vec![(table.var(var), Rational::one())],
        }
    }

    /// Interns a [`Polynomial`].
    pub fn from_polynomial(poly: &Polynomial, table: &mut MonomialTable) -> Self {
        let mut terms: Vec<(MonoId, Rational)> = poly
            .iter()
            .map(|(m, c)| (table.intern(m.clone()), *c))
            .collect();
        terms.sort_by_key(|&(m, _)| m);
        IntPoly { terms }
    }

    /// Converts back to the `Monomial`-keyed representation.
    pub fn to_polynomial(&self, table: &MonomialTable) -> Polynomial {
        Polynomial::from_terms(
            self.terms
                .iter()
                .map(|&(m, c)| (c, table.monomial(m).clone())),
        )
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The `(monomial, coefficient)` terms in raw-id order.
    pub fn terms(&self) -> &[(MonoId, Rational)] {
        &self.terms
    }

    /// Adds `coefficient · monomial` in place.
    pub fn add_term(&mut self, id: MonoId, coefficient: Rational) {
        merge_term(
            &mut self.terms,
            id,
            coefficient,
            Rational::is_zero,
            |entry, c| *entry += c,
        );
    }

    /// The product of two interned polynomials.
    pub fn mul(&self, other: &IntPoly, table: &mut MonomialTable) -> IntPoly {
        let mut result = IntPoly::zero();
        for &(ma, ca) in &self.terms {
            for &(mb, cb) in &other.terms {
                result.add_term(table.mul(ma, mb), ca * cb);
            }
        }
        result
    }

    /// The polynomial raised to a non-negative power.
    pub fn pow(&self, exponent: u32, table: &mut MonomialTable) -> IntPoly {
        let mut result = IntPoly {
            terms: vec![(MonoId::ONE, Rational::one())],
        };
        for _ in 0..exponent {
            result = result.mul(self, table);
        }
        result
    }
}

/// Expands one interned monomial under a substitution `v ↦ pᵥ` into a
/// concrete interned polynomial. Variables for which `subst` returns `None`
/// are left untouched.
pub fn substitute_monomial<'a, F>(id: MonoId, mut subst: F, table: &mut MonomialTable) -> IntPoly
where
    F: FnMut(VarId) -> Option<&'a IntPoly>,
{
    let powers: Vec<(VarId, u32)> = table.monomial(id).iter().collect();
    let mut result = IntPoly {
        terms: vec![(MonoId::ONE, Rational::one())],
    };
    for (var, exp) in powers {
        match subst(var) {
            Some(replacement) => {
                let factor = replacement.pow(exp, table);
                result = result.mul(&factor, table);
            }
            None => {
                let var_id = table.var(var);
                let mut factor = var_id;
                for _ in 1..exp {
                    factor = table.mul(factor, var_id);
                }
                let mono = IntPoly {
                    terms: vec![(factor, Rational::one())],
                };
                result = result.mul(&mono, table);
            }
        }
    }
    result
}

/// A template polynomial with interned monomials: coefficients are affine
/// [`LinExpr`]s over the unknowns, keys are [`MonoId`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntTemplate {
    terms: Vec<(MonoId, LinExpr)>,
}

impl IntTemplate {
    /// The zero template.
    pub fn zero() -> Self {
        IntTemplate::default()
    }

    /// Lifts a concrete polynomial (constant coefficients).
    pub fn from_polynomial(poly: &Polynomial, table: &mut MonomialTable) -> Self {
        let mut terms: Vec<(MonoId, LinExpr)> = poly
            .iter()
            .map(|(m, c)| (table.intern(m.clone()), LinExpr::constant(*c)))
            .collect();
        terms.sort_by_key(|&(m, _)| m);
        IntTemplate { terms }
    }

    /// Lifts a concrete interned polynomial (constant coefficients).
    pub fn from_int_poly(poly: &IntPoly) -> Self {
        IntTemplate {
            terms: poly
                .terms()
                .iter()
                .map(|&(m, c)| (m, LinExpr::constant(c)))
                .collect(),
        }
    }

    /// Interns a [`TemplatePoly`].
    pub fn from_template(template: &TemplatePoly, table: &mut MonomialTable) -> Self {
        let mut terms: Vec<(MonoId, LinExpr)> = template
            .iter()
            .map(|(m, c)| (table.intern(m.clone()), c.clone()))
            .collect();
        terms.sort_by_key(|&(m, _)| m);
        IntTemplate { terms }
    }

    /// Converts back to the `Monomial`-keyed representation (canonical
    /// graded-lexicographic order).
    pub fn to_template(&self, table: &MonomialTable) -> TemplatePoly {
        let mut result = TemplatePoly::zero();
        for &(m, ref coeff) in &self.terms {
            result.add_term(coeff.clone(), table.monomial(m).clone());
        }
        result
    }

    /// `true` when the template has no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The `(monomial, coefficient)` terms in raw-id order.
    pub fn terms(&self) -> &[(MonoId, LinExpr)] {
        &self.terms
    }

    /// `true` when every coefficient is a rational constant (no unknowns).
    pub fn is_concrete(&self) -> bool {
        self.terms.iter().all(|(_, coeff)| coeff.is_constant())
    }

    /// The program variables occurring in the template, sorted and
    /// deduplicated.
    pub fn variables(&self, table: &MonomialTable) -> Vec<VarId> {
        let mut vars: Vec<VarId> = self
            .terms
            .iter()
            .flat_map(|&(m, _)| table.monomial(m).variables().collect::<Vec<_>>())
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Adds `coefficient · monomial` in place (merging into an existing
    /// term without cloning it).
    pub fn add_term(&mut self, id: MonoId, coefficient: LinExpr) {
        merge_term(
            &mut self.terms,
            id,
            coefficient,
            LinExpr::is_zero,
            |entry, c| entry.add_expr(&c),
        );
    }

    /// Adds `factor · coefficient · monomial` in place.
    pub fn add_scaled_term(&mut self, id: MonoId, coefficient: &LinExpr, factor: Rational) {
        if factor.is_zero() || coefficient.is_zero() {
            return;
        }
        merge_slot(
            &mut self.terms,
            id,
            LinExpr::is_zero,
            |entry| entry.add_scaled(coefficient, factor),
            || coefficient.scale(factor),
        );
    }

    /// Substitutes program variables by interned polynomials (identity where
    /// `None`), keeping the symbolic coefficients — `η(ℓ′) ∘ α` of Step 2.
    pub fn substitute<'a, F>(&self, mut subst: F, table: &mut MonomialTable) -> IntTemplate
    where
        F: FnMut(VarId) -> Option<&'a IntPoly>,
    {
        let mut result = IntTemplate::zero();
        for &(monomial, ref coeff) in &self.terms {
            let expansion = substitute_monomial(monomial, &mut subst, table);
            for &(mono, scalar) in expansion.terms() {
                result.add_scaled_term(mono, coeff, scalar);
            }
        }
        result
    }

    /// Multiplies two templates, producing quadratic coefficients — the
    /// `hᵢ·gᵢ` products of the Putinar identity.
    pub fn mul_template(&self, other: &IntTemplate, table: &mut MonomialTable) -> IntQuad {
        let mut result = IntQuad::zero();
        for &(ma, ref ca) in &self.terms {
            for &(mb, ref cb) in &other.terms {
                result.add_term(table.mul(ma, mb), ca.mul(cb));
            }
        }
        result
    }

    /// Converts the template into an [`IntQuad`] with affine coefficients.
    pub fn to_quadratic(&self) -> IntQuad {
        IntQuad {
            terms: self
                .terms
                .iter()
                .map(|&(m, ref c)| (m, c.clone().into()))
                .collect(),
        }
    }
}

/// A polynomial with interned monomials whose coefficients are quadratic
/// expressions over the unknowns — the accumulation type of Step 3.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct IntQuad {
    terms: Vec<(MonoId, QuadExpr)>,
}

impl IntQuad {
    /// The zero polynomial.
    pub fn zero() -> Self {
        IntQuad::default()
    }

    /// `true` when there are no terms.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The number of terms.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// The `(monomial, coefficient)` terms in raw-id order.
    pub fn terms(&self) -> &[(MonoId, QuadExpr)] {
        &self.terms
    }

    /// Consumes the polynomial, returning its terms.
    pub fn into_terms(self) -> Vec<(MonoId, QuadExpr)> {
        self.terms
    }

    /// Adds `coefficient · monomial` in place.
    pub fn add_term(&mut self, id: MonoId, coefficient: QuadExpr) {
        merge_term(
            &mut self.terms,
            id,
            coefficient,
            QuadExpr::is_zero,
            |entry, c| entry.add_expr(&c),
        );
    }

    /// Adds `factor · coefficient · monomial` in place, without
    /// materializing the scaled coefficient when the term already exists.
    pub fn add_scaled_term(&mut self, id: MonoId, coefficient: &QuadExpr, factor: Rational) {
        if factor.is_zero() || coefficient.is_zero() {
            return;
        }
        merge_slot(
            &mut self.terms,
            id,
            QuadExpr::is_zero,
            |entry| entry.add_scaled(coefficient, factor),
            || coefficient.scale(factor),
        );
    }

    /// Adds another polynomial in place.
    pub fn add_assign(&mut self, other: IntQuad) {
        for (id, coeff) in other.terms {
            self.add_term(id, coeff);
        }
    }

    /// Subtracts another polynomial in place.
    pub fn sub_assign(&mut self, other: &IntQuad) {
        for &(id, ref coeff) in &other.terms {
            self.add_scaled_term(id, coeff, Rational::from_int(-1));
        }
    }

    /// Converts back to the `Monomial`-keyed representation.
    pub fn to_quadratic_poly(&self, table: &MonomialTable) -> QuadraticPoly {
        let mut result = QuadraticPoly::zero();
        for &(m, ref coeff) in &self.terms {
            result.add_term(coeff.clone(), table.monomial(m).clone());
        }
        result
    }
}

/// A hash-indexed accumulator for [`IntQuad`]-shaped sums.
///
/// [`IntQuad`] keeps its terms sorted, which costs an `O(n)` shift per fresh
/// monomial; the accumulator instead appends and finds slots through an
/// `FxHashMap`, making every merge amortized `O(1)`. The Putinar translation
/// accumulates each pair's entire right-hand side through one of these and
/// only sorts once at the end (into the canonical graded-lexicographic
/// emission order).
#[derive(Debug, Clone, Default)]
pub struct QuadAccumulator {
    terms: Vec<(MonoId, QuadExpr)>,
    index: FxHashMap<MonoId, usize>,
}

impl QuadAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        QuadAccumulator::default()
    }

    /// The accumulated `(monomial, coefficient)` terms in discovery order
    /// (zero coefficients possible until [`QuadAccumulator::into_terms`]).
    pub fn terms(&self) -> &[(MonoId, QuadExpr)] {
        &self.terms
    }

    /// The accumulated coefficient of a monomial, if the slot exists.
    pub fn get(&self, id: MonoId) -> Option<&QuadExpr> {
        self.index.get(&id).map(|&pos| &self.terms[pos].1)
    }

    /// The coefficient slot of a monomial, created on first use.
    pub fn slot(&mut self, id: MonoId) -> &mut QuadExpr {
        let pos = match self.index.get(&id) {
            Some(&pos) => pos,
            None => {
                self.terms.push((id, QuadExpr::zero()));
                let pos = self.terms.len() - 1;
                self.index.insert(id, pos);
                pos
            }
        };
        &mut self.terms[pos].1
    }

    /// Adds `factor · coefficient · monomial`.
    pub fn add_scaled_term(&mut self, id: MonoId, coefficient: &QuadExpr, factor: Rational) {
        if factor.is_zero() || coefficient.is_zero() {
            return;
        }
        self.slot(id).add_scaled(coefficient, factor);
    }

    /// Adds `coefficient · monomial`.
    pub fn add_term(&mut self, id: MonoId, coefficient: &QuadExpr) {
        if coefficient.is_zero() {
            return;
        }
        self.slot(id).add_expr(coefficient);
    }

    /// Accumulates the product of two templates (`hᵢ·gᵢ`).
    pub fn add_mul_template(
        &mut self,
        a: &IntTemplate,
        b: &IntTemplate,
        table: &mut MonomialTable,
    ) {
        for &(ma, ref ca) in a.terms() {
            for &(mb, ref cb) in b.terms() {
                let q = ca.mul(cb);
                if !q.is_zero() {
                    self.slot(table.mul(ma, mb)).add_expr(&q);
                }
            }
        }
    }

    /// Negates every accumulated coefficient in place, then adds the
    /// template's affine coefficients — turning an accumulated right-hand
    /// side `Σ hᵢ·gᵢ + ε` into the coefficient difference `goal − rhs`
    /// without copying the (much larger) accumulated side.
    pub fn negate_then_add_template(&mut self, template: &IntTemplate) {
        for (_, coeff) in &mut self.terms {
            coeff.negate_in_place();
        }
        for &(m, ref lin) in template.terms() {
            self.slot(m).add_lin(lin);
        }
    }

    /// Consumes the accumulator, returning the non-zero terms (unsorted —
    /// use [`MonomialTable::sort_terms`] for the canonical order).
    pub fn into_terms(self) -> Vec<(MonoId, QuadExpr)> {
        self.terms
            .into_iter()
            .filter(|(_, c)| !c.is_zero())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monomial::Monomial;
    use crate::symbolic::UnknownId;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }
    fn int(x: i64) -> Rational {
        Rational::from_int(x)
    }

    #[test]
    fn int_poly_round_trips_and_multiplies() {
        let mut table = MonomialTable::new();
        let p = Polynomial::variable(v(0)) + Polynomial::constant(int(2));
        let q = Polynomial::variable(v(1)) - Polynomial::constant(int(1));
        let ip = IntPoly::from_polynomial(&p, &mut table);
        let iq = IntPoly::from_polynomial(&q, &mut table);
        assert_eq!(ip.to_polynomial(&table), p);
        let product = ip.mul(&iq, &mut table);
        assert_eq!(product.to_polynomial(&table), &p * &q);
    }

    #[test]
    fn int_poly_pow_matches_reference() {
        let mut table = MonomialTable::new();
        let p = Polynomial::variable(v(0)) + Polynomial::constant(int(1));
        let ip = IntPoly::from_polynomial(&p, &mut table);
        assert_eq!(ip.pow(3, &mut table).to_polynomial(&table), p.pow(3));
        assert_eq!(
            ip.pow(0, &mut table).to_polynomial(&table),
            Polynomial::one()
        );
    }

    #[test]
    fn template_substitution_matches_reference() {
        let mut table = MonomialTable::new();
        let mut template = TemplatePoly::zero();
        template.add_term(
            LinExpr::unknown(UnknownId::new(0)),
            Monomial::from_powers(&[(v(0), 2)]),
        );
        template.add_term(
            LinExpr::unknown(UnknownId::new(1)),
            Monomial::variable(v(1)),
        );
        let replacement = Polynomial::variable(v(1)) + Polynomial::constant(int(1));
        let expected = template.substitute(|var| {
            if var == v(0) {
                Some(replacement.clone())
            } else {
                None
            }
        });

        let it = IntTemplate::from_template(&template, &mut table);
        let ir = IntPoly::from_polynomial(&replacement, &mut table);
        let substituted =
            it.substitute(|var| if var == v(0) { Some(&ir) } else { None }, &mut table);
        assert_eq!(substituted.to_template(&table), expected);
    }

    #[test]
    fn template_product_matches_reference() {
        let mut table = MonomialTable::new();
        let mut a = TemplatePoly::zero();
        a.add_term(LinExpr::unknown(UnknownId::new(0)), Monomial::one());
        a.add_term(
            LinExpr::unknown(UnknownId::new(1)),
            Monomial::variable(v(0)),
        );
        let mut b = TemplatePoly::zero();
        b.add_term(LinExpr::unknown(UnknownId::new(2)), Monomial::one());
        b.add_term(
            LinExpr::unknown(UnknownId::new(3)),
            Monomial::variable(v(0)),
        );
        let expected = a.mul_template(&b);

        let ia = IntTemplate::from_template(&a, &mut table);
        let ib = IntTemplate::from_template(&b, &mut table);
        let product = ia.mul_template(&ib, &mut table);
        assert_eq!(product.to_quadratic_poly(&table), expected);
    }

    #[test]
    fn quad_accumulation_cancels_in_place() {
        let mut table = MonomialTable::new();
        let x = table.var(v(0));
        let mut acc = IntQuad::zero();
        let mut coeff = QuadExpr::zero();
        coeff.add_linear(UnknownId::new(0), int(3));
        acc.add_term(x, coeff.clone());
        acc.add_scaled_term(x, &coeff, int(-1));
        assert!(acc.is_zero());
    }

    #[test]
    fn concrete_detection_and_variables() {
        let mut table = MonomialTable::new();
        let p = Polynomial::variable(v(2)) + Polynomial::variable(v(0));
        let it = IntTemplate::from_polynomial(&p, &mut table);
        assert!(it.is_concrete());
        assert_eq!(it.variables(&table), vec![v(0), v(2)]);
        let mut with_unknown = it.clone();
        with_unknown.add_term(table.var(v(0)), LinExpr::unknown(UnknownId::new(7)));
        assert!(!with_unknown.is_concrete());
    }
}
