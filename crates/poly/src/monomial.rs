//! Monomials: products of program variables raised to non-negative powers.

use std::cmp::Ordering;
use std::fmt;

use polyinv_arith::Rational;

/// An opaque identifier for a program variable.
///
/// Variable names are owned by the language front-end; polynomial code only
/// needs a stable, cheap identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(usize);

impl VarId {
    /// Creates a variable id from a raw index.
    pub fn new(index: usize) -> Self {
        VarId(index)
    }

    /// The raw index of the variable.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A monomial `∏ vᵢ^eᵢ`, stored as a sorted list of `(variable, exponent)`
/// pairs with strictly positive exponents. The empty monomial is the
/// constant `1`.
///
/// # Example
///
/// ```
/// use polyinv_poly::{Monomial, VarId};
///
/// let x = VarId::new(0);
/// let y = VarId::new(1);
/// let m = Monomial::from_powers(&[(x, 2), (y, 1)]);
/// assert_eq!(m.degree(), 3);
/// assert_eq!(m.exponent(x), 2);
/// assert_eq!(m.exponent(VarId::new(7)), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Monomial {
    /// Sorted by variable id; exponents are strictly positive.
    powers: Vec<(VarId, u32)>,
}

impl Monomial {
    /// The constant monomial `1`.
    pub fn one() -> Self {
        Monomial { powers: Vec::new() }
    }

    /// The monomial consisting of a single variable.
    pub fn variable(var: VarId) -> Self {
        Monomial {
            powers: vec![(var, 1)],
        }
    }

    /// Builds a monomial from `(variable, exponent)` pairs; zero exponents
    /// are dropped and duplicate variables are combined.
    pub fn from_powers(powers: &[(VarId, u32)]) -> Self {
        let mut sorted: Vec<(VarId, u32)> = Vec::with_capacity(powers.len());
        for &(var, exp) in powers {
            if exp == 0 {
                continue;
            }
            match sorted.binary_search_by_key(&var, |&(v, _)| v) {
                Ok(pos) => sorted[pos].1 += exp,
                Err(pos) => sorted.insert(pos, (var, exp)),
            }
        }
        Monomial { powers: sorted }
    }

    /// Returns `true` if this is the constant monomial `1`.
    pub fn is_one(&self) -> bool {
        self.powers.is_empty()
    }

    /// The total degree of the monomial.
    pub fn degree(&self) -> u32 {
        self.powers.iter().map(|&(_, e)| e).sum()
    }

    /// The exponent of `var` in this monomial (zero if absent).
    pub fn exponent(&self, var: VarId) -> u32 {
        self.powers
            .binary_search_by_key(&var, |&(v, _)| v)
            .map(|pos| self.powers[pos].1)
            .unwrap_or(0)
    }

    /// Iterates over the `(variable, exponent)` pairs with positive exponent.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u32)> + '_ {
        self.powers.iter().copied()
    }

    /// The set of variables occurring in the monomial.
    pub fn variables(&self) -> impl Iterator<Item = VarId> + '_ {
        self.powers.iter().map(|&(v, _)| v)
    }

    /// The product of two monomials.
    pub fn mul(&self, other: &Monomial) -> Monomial {
        let mut result = Vec::with_capacity(self.powers.len() + other.powers.len());
        let mut i = 0;
        let mut j = 0;
        while i < self.powers.len() && j < other.powers.len() {
            let (va, ea) = self.powers[i];
            let (vb, eb) = other.powers[j];
            match va.cmp(&vb) {
                Ordering::Less => {
                    result.push((va, ea));
                    i += 1;
                }
                Ordering::Greater => {
                    result.push((vb, eb));
                    j += 1;
                }
                Ordering::Equal => {
                    result.push((va, ea + eb));
                    i += 1;
                    j += 1;
                }
            }
        }
        result.extend_from_slice(&self.powers[i..]);
        result.extend_from_slice(&other.powers[j..]);
        Monomial { powers: result }
    }

    /// Evaluates the monomial at a valuation given by a lookup closure.
    pub fn eval<F>(&self, mut valuation: F) -> Rational
    where
        F: FnMut(VarId) -> Rational,
    {
        let mut result = Rational::one();
        for &(var, exp) in &self.powers {
            result *= valuation(var).pow(exp);
        }
        result
    }

    /// Evaluates the monomial at a valuation, returning `None` on `i128`
    /// rational overflow (the interpreter's overflow-safe path).
    pub fn checked_eval<F>(&self, mut valuation: F) -> Option<Rational>
    where
        F: FnMut(VarId) -> Rational,
    {
        let mut result = Rational::one();
        for &(var, exp) in &self.powers {
            let power = valuation(var).checked_pow(exp).ok()?;
            result = result.checked_mul(&power).ok()?;
        }
        Some(result)
    }

    /// Evaluates the monomial at an `f64` valuation.
    pub fn eval_f64<F>(&self, mut valuation: F) -> f64
    where
        F: FnMut(VarId) -> f64,
    {
        let mut result = 1.0;
        for &(var, exp) in &self.powers {
            result *= valuation(var).powi(exp as i32);
        }
        result
    }

    /// Renders the monomial using a variable-name resolver.
    pub fn display_with<F>(&self, mut name: F) -> String
    where
        F: FnMut(VarId) -> String,
    {
        if self.is_one() {
            return "1".to_string();
        }
        let mut parts = Vec::new();
        for &(var, exp) in &self.powers {
            if exp == 1 {
                parts.push(name(var));
            } else {
                parts.push(format!("{}^{}", name(var), exp));
            }
        }
        parts.join("*")
    }

    /// Enumerates all monomials of total degree at most `max_degree` over the
    /// given variables, in a deterministic (graded-lexicographic) order.
    ///
    /// This is the basis `M_d` used for the invariant templates (Step 1) and
    /// the basis `M_ϒ` used for the Putinar multipliers (Step 3).
    pub fn all_up_to_degree(vars: &[VarId], max_degree: u32) -> Vec<Monomial> {
        let mut result = Vec::new();
        let mut current: Vec<(VarId, u32)> = Vec::new();
        fn recurse(
            vars: &[VarId],
            index: usize,
            remaining: u32,
            current: &mut Vec<(VarId, u32)>,
            out: &mut Vec<Monomial>,
        ) {
            if index == vars.len() {
                out.push(Monomial::from_powers(current));
                return;
            }
            for exp in 0..=remaining {
                if exp > 0 {
                    current.push((vars[index], exp));
                }
                recurse(vars, index + 1, remaining - exp, current, out);
                if exp > 0 {
                    current.pop();
                }
            }
        }
        recurse(vars, 0, max_degree, &mut current, &mut result);
        // Sort by (degree, powers) for a stable, readable order.
        result.sort_by(|a, b| {
            a.degree()
                .cmp(&b.degree())
                .then_with(|| a.powers.cmp(&b.powers))
        });
        result.dedup();
        result
    }
}

impl PartialOrd for Monomial {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Monomial {
    /// Graded lexicographic order: compare total degree first, then the
    /// exponent vectors.
    fn cmp(&self, other: &Self) -> Ordering {
        self.degree()
            .cmp(&other.degree())
            .then_with(|| self.powers.cmp(&other.powers))
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.display_with(|v| v.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn construction_drops_zero_exponents() {
        let m = Monomial::from_powers(&[(v(0), 0), (v(1), 2)]);
        assert_eq!(m.exponent(v(0)), 0);
        assert_eq!(m.exponent(v(1)), 2);
        assert_eq!(m.degree(), 2);
    }

    #[test]
    fn construction_merges_duplicates() {
        let m = Monomial::from_powers(&[(v(1), 1), (v(0), 2), (v(1), 3)]);
        assert_eq!(m.exponent(v(1)), 4);
        assert_eq!(m.exponent(v(0)), 2);
        assert_eq!(m.degree(), 6);
    }

    #[test]
    fn multiplication_merges_exponents() {
        let a = Monomial::from_powers(&[(v(0), 1), (v(2), 2)]);
        let b = Monomial::from_powers(&[(v(1), 1), (v(2), 1)]);
        let product = a.mul(&b);
        assert_eq!(product.exponent(v(0)), 1);
        assert_eq!(product.exponent(v(1)), 1);
        assert_eq!(product.exponent(v(2)), 3);
        assert_eq!(a.mul(&Monomial::one()), a);
    }

    #[test]
    fn evaluation() {
        let m = Monomial::from_powers(&[(v(0), 2), (v(1), 1)]);
        let value = m.eval(|var| {
            if var == v(0) {
                Rational::from_int(3)
            } else {
                Rational::from_int(-2)
            }
        });
        assert_eq!(value, Rational::from_int(-18));
        let fvalue = m.eval_f64(|var| if var == v(0) { 3.0 } else { -2.0 });
        assert!((fvalue + 18.0).abs() < 1e-12);
    }

    #[test]
    fn monomial_basis_count_matches_binomial() {
        // Number of monomials of degree <= d in k variables is C(k+d, d).
        let vars = [v(0), v(1), v(2)];
        let basis = Monomial::all_up_to_degree(&vars, 2);
        assert_eq!(basis.len(), 10); // C(5,2)
        let basis3 = Monomial::all_up_to_degree(&vars, 3);
        assert_eq!(basis3.len(), 20); // C(6,3)
                                      // The basis starts with the constant monomial.
        assert!(basis[0].is_one());
        // All entries are distinct and within degree bound.
        for m in &basis3 {
            assert!(m.degree() <= 3);
        }
    }

    #[test]
    fn ordering_is_graded() {
        let low = Monomial::variable(v(5));
        let high = Monomial::from_powers(&[(v(0), 2)]);
        assert!(low < high);
    }

    #[test]
    fn display_uses_resolver() {
        let m = Monomial::from_powers(&[(v(0), 2), (v(1), 1)]);
        let text = m.display_with(|var| if var == v(0) { "n".into() } else { "i".into() });
        assert_eq!(text, "n^2*i");
        assert_eq!(Monomial::one().to_string(), "1");
    }
}
