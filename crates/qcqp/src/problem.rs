//! Problem representation for quadratically-constrained programs.

use std::sync::{Arc, OnceLock};

use polyinv_arith::Matrix;

/// A sparse quadratic form `c + Σ aᵢ·xᵢ + Σ bᵢⱼ·xᵢ·xⱼ`.
#[derive(Debug, Clone, Default)]
pub struct QuadraticForm {
    /// The constant term.
    pub constant: f64,
    /// Linear terms `(variable, coefficient)`.
    pub linear: Vec<(usize, f64)>,
    /// Quadratic terms `(i, j, coefficient)` with `i ≤ j`; the coefficient
    /// multiplies `xᵢ·xⱼ` exactly once (no symmetrization).
    pub quadratic: Vec<(usize, usize, f64)>,
}

impl QuadraticForm {
    /// A constant form.
    pub fn constant(value: f64) -> Self {
        QuadraticForm {
            constant: value,
            ..QuadraticForm::default()
        }
    }

    /// A form consisting of a single variable.
    pub fn variable(index: usize) -> Self {
        QuadraticForm {
            constant: 0.0,
            linear: vec![(index, 1.0)],
            quadratic: Vec::new(),
        }
    }

    /// Returns `true` if the form has no quadratic terms.
    pub fn is_affine(&self) -> bool {
        self.quadratic.is_empty()
    }

    /// Evaluates the form at `x`.
    pub fn eval(&self, x: &[f64]) -> f64 {
        let mut value = self.constant;
        for &(i, c) in &self.linear {
            value += c * x[i];
        }
        for &(i, j, c) in &self.quadratic {
            value += c * x[i] * x[j];
        }
        value
    }

    /// Accumulates `scale · ∇form(x)` into `grad`.
    pub fn add_gradient(&self, x: &[f64], grad: &mut [f64], scale: f64) {
        for &(i, c) in &self.linear {
            grad[i] += scale * c;
        }
        for &(i, j, c) in &self.quadratic {
            if i == j {
                grad[i] += scale * 2.0 * c * x[i];
            } else {
                grad[i] += scale * c * x[j];
                grad[j] += scale * c * x[i];
            }
        }
    }

    /// The sorted, deduplicated list of variables this form mentions — the
    /// sparsity pattern of both its value and its gradient.
    pub fn touched_vars(&self) -> Vec<usize> {
        let mut vars: Vec<usize> = self
            .linear
            .iter()
            .map(|&(i, _)| i)
            .chain(self.quadratic.iter().flat_map(|&(i, j, _)| [i, j]))
            .collect();
        vars.sort_unstable();
        vars.dedup();
        vars
    }

    /// The largest variable index mentioned (plus one), i.e. the minimum
    /// dimension of a compatible assignment vector.
    pub fn min_dimension(&self) -> usize {
        let lin = self.linear.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        let quad = self
            .quadratic
            .iter()
            .map(|&(_, j, _)| j + 1)
            .max()
            .unwrap_or(0);
        lin.max(quad)
    }
}

/// A positive-semidefiniteness constraint: the symmetric matrix whose upper
/// triangle (row-major) is given by the listed variables must be PSD.
#[derive(Debug, Clone)]
pub struct PsdConstraint {
    /// The dimension of the matrix.
    pub dim: usize,
    /// Indices of the upper-triangle entries, row-major:
    /// `(0,0), (0,1), …, (0,dim−1), (1,1), …`.
    pub indices: Vec<usize>,
}

impl PsdConstraint {
    /// Extracts the symmetric matrix from an assignment.
    pub fn extract(&self, x: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(self.dim, self.dim);
        let mut k = 0;
        for row in 0..self.dim {
            for col in row..self.dim {
                let value = x[self.indices[k]];
                m.set(row, col, value);
                m.set(col, row, value);
                k += 1;
            }
        }
        m
    }

    /// Writes a symmetric matrix back into an assignment.
    pub fn store(&self, m: &Matrix, x: &mut [f64]) {
        let mut k = 0;
        for row in 0..self.dim {
            for col in row..self.dim {
                x[self.indices[k]] = 0.5 * (m.get(row, col) + m.get(col, row));
                k += 1;
            }
        }
    }

    /// Projects the block of `x` onto the PSD cone in place and returns the
    /// Frobenius distance moved.
    pub fn project(&self, x: &mut [f64]) -> f64 {
        let matrix = self.extract(x);
        let projected = matrix.project_psd();
        let distance = (&projected - &matrix).frobenius_norm();
        self.store(&projected, x);
        distance
    }

    /// The minimum eigenvalue of the block under the assignment.
    pub fn min_eigenvalue(&self, x: &[f64]) -> f64 {
        self.extract(x).min_eigenvalue()
    }
}

/// Precomputed per-constraint sparsity metadata of a [`Problem`]: the
/// touched-variable set of every constraint (and the objective), the total
/// Jacobian nnz and the union of active variables. Both solver back-ends
/// consume this instead of rediscovering structure every iteration; the
/// sparse LM back-end derives its `JᵀJ` pattern and symbolic factorization
/// from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemStructure {
    /// Sorted touched-variable set of each equality constraint.
    pub equality_vars: Vec<Vec<usize>>,
    /// Sorted touched-variable set of each inequality constraint.
    pub inequality_vars: Vec<Vec<usize>>,
    /// Sorted touched-variable set of the objective (empty when absent).
    pub objective_vars: Vec<usize>,
    /// Sorted union of every variable any constraint or the objective
    /// mentions. Variables outside this set never receive a gradient.
    pub active_vars: Vec<usize>,
    /// Total entries across the equality and inequality Jacobian rows.
    pub jacobian_nnz: usize,
    /// Whether the problem had an objective when analyzed. Part of the
    /// staleness fingerprint: a *constant* objective also has an empty
    /// `objective_vars`, so emptiness alone cannot distinguish "objective
    /// touching nothing" from "no objective".
    pub has_objective: bool,
}

impl ProblemStructure {
    fn analyze(problem: &Problem) -> Self {
        let equality_vars: Vec<Vec<usize>> = problem
            .equalities
            .iter()
            .map(QuadraticForm::touched_vars)
            .collect();
        let inequality_vars: Vec<Vec<usize>> = problem
            .inequalities
            .iter()
            .map(QuadraticForm::touched_vars)
            .collect();
        let objective_vars = problem
            .objective
            .as_ref()
            .map(QuadraticForm::touched_vars)
            .unwrap_or_default();
        let jacobian_nnz = equality_vars
            .iter()
            .chain(&inequality_vars)
            .map(Vec::len)
            .sum();
        let mut active_vars: Vec<usize> = equality_vars
            .iter()
            .chain(&inequality_vars)
            .flatten()
            .copied()
            .chain(objective_vars.iter().copied())
            .chain(
                problem
                    .psd
                    .iter()
                    .flat_map(|block| block.indices.iter().copied()),
            )
            .collect();
        active_vars.sort_unstable();
        active_vars.dedup();
        ProblemStructure {
            equality_vars,
            inequality_vars,
            objective_vars,
            active_vars,
            jacobian_nnz,
            has_objective: problem.objective.is_some(),
        }
    }

    /// `true` if this analysis still matches the problem's constraint
    /// counts (the cheap staleness fingerprint used by the cache).
    fn matches(&self, problem: &Problem) -> bool {
        self.equality_vars.len() == problem.equalities.len()
            && self.inequality_vars.len() == problem.inequalities.len()
            && self.has_objective == problem.objective.is_some()
    }
}

/// A quadratically-constrained program
/// `min objective(x)  s.t.  eqᵢ(x) = 0,  ineqⱼ(x) ≥ 0,  Q_k(x) ⪰ 0,
///  lo ≤ x ≤ hi`.
#[derive(Debug, Clone)]
pub struct Problem {
    /// The number of variables.
    pub num_vars: usize,
    /// Equality constraints `form = 0`.
    pub equalities: Vec<QuadraticForm>,
    /// Inequality constraints `form ≥ 0`.
    pub inequalities: Vec<QuadraticForm>,
    /// PSD block constraints.
    pub psd: Vec<PsdConstraint>,
    /// The objective to *minimize* (`None` for pure feasibility problems).
    pub objective: Option<QuadraticForm>,
    /// Per-variable box bounds (defaults to `(-BOUND, BOUND)`).
    pub bounds: Vec<(f64, f64)>,
    /// Lazily-computed sparsity metadata (see [`Problem::structure`]).
    structure: OnceLock<Arc<ProblemStructure>>,
}

/// Default symmetric box bound applied to every variable; it keeps the
/// first-order solver from diverging and matches the bounded-reals model.
pub const DEFAULT_BOUND: f64 = 1.0e4;

impl Problem {
    /// Creates an unconstrained problem with `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Problem {
            num_vars,
            equalities: Vec::new(),
            inequalities: Vec::new(),
            psd: Vec::new(),
            objective: None,
            bounds: vec![(-DEFAULT_BOUND, DEFAULT_BOUND); num_vars],
            structure: OnceLock::new(),
        }
    }

    /// The per-constraint sparsity metadata of this problem, computed once
    /// and cached. The fingerprint is the constraint *counts*: if the
    /// problem gains or loses constraints after the first call a fresh
    /// (uncached) analysis is returned, but mutating a constraint in place
    /// is not detected — build the problem fully before solving it, as the
    /// bridge does.
    pub fn structure(&self) -> Arc<ProblemStructure> {
        let cached = self
            .structure
            .get_or_init(|| Arc::new(ProblemStructure::analyze(self)));
        if cached.matches(self) {
            Arc::clone(cached)
        } else {
            Arc::new(ProblemStructure::analyze(self))
        }
    }

    /// Sets the box bound of one variable.
    pub fn set_bound(&mut self, var: usize, lower: f64, upper: f64) {
        self.bounds[var] = (lower, upper);
    }

    /// The worst constraint violation at `x` (equalities, inequalities, PSD
    /// blocks and box bounds).
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for eq in &self.equalities {
            worst = worst.max(eq.eval(x).abs());
        }
        for ineq in &self.inequalities {
            worst = worst.max((-ineq.eval(x)).max(0.0));
        }
        for block in &self.psd {
            worst = worst.max((-block.min_eigenvalue(x)).max(0.0));
        }
        for (i, &(lo, hi)) in self.bounds.iter().enumerate() {
            worst = worst.max(lo - x[i]).max(x[i] - hi);
        }
        worst
    }

    /// Returns `true` if `x` satisfies every constraint up to `tolerance`.
    pub fn is_feasible(&self, x: &[f64], tolerance: f64) -> bool {
        self.max_violation(x) <= tolerance
    }

    /// Clamps an assignment into the box bounds in place.
    pub fn clamp(&self, x: &mut [f64]) {
        for (value, &(lo, hi)) in x.iter_mut().zip(&self.bounds) {
            *value = value.clamp(lo, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_form_evaluation_and_gradient() {
        // f(x, y) = 1 + 2x + 3xy + y²
        let form = QuadraticForm {
            constant: 1.0,
            linear: vec![(0, 2.0)],
            quadratic: vec![(0, 1, 3.0), (1, 1, 1.0)],
        };
        let x = [2.0, -1.0];
        assert_eq!(form.eval(&x), 1.0 + 4.0 - 6.0 + 1.0);
        let mut grad = vec![0.0; 2];
        form.add_gradient(&x, &mut grad, 1.0);
        // df/dx = 2 + 3y = -1, df/dy = 3x + 2y = 4.
        assert_eq!(grad, vec![-1.0, 4.0]);
        assert_eq!(form.min_dimension(), 2);
        assert!(!form.is_affine());
    }

    #[test]
    fn gradient_scaling_accumulates() {
        let form = QuadraticForm::variable(1);
        let mut grad = vec![0.0; 3];
        form.add_gradient(&[0.0; 3], &mut grad, 2.5);
        form.add_gradient(&[0.0; 3], &mut grad, -0.5);
        assert_eq!(grad, vec![0.0, 2.0, 0.0]);
    }

    #[test]
    fn psd_constraint_round_trip_and_projection() {
        let block = PsdConstraint {
            dim: 2,
            indices: vec![0, 1, 2],
        };
        // Indefinite matrix [[0, 1], [1, 0]].
        let mut x = vec![0.0, 1.0, 0.0];
        assert!(block.min_eigenvalue(&x) < -0.5);
        let moved = block.project(&mut x);
        assert!(moved > 0.0);
        assert!(block.min_eigenvalue(&x) >= -1e-9);
        // The projection of [[0,1],[1,0]] is [[0.5,0.5],[0.5,0.5]].
        assert!((x[0] - 0.5).abs() < 1e-9);
        assert!((x[1] - 0.5).abs() < 1e-9);
        assert!((x[2] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn structure_reports_per_constraint_sparsity_and_is_cached() {
        let mut problem = Problem::new(5);
        problem.equalities.push(QuadraticForm {
            constant: 1.0,
            linear: vec![(3, 2.0)],
            quadratic: vec![(0, 3, 1.0)],
        });
        problem.inequalities.push(QuadraticForm::variable(1));
        problem.objective = Some(QuadraticForm::variable(4));
        let structure = problem.structure();
        assert_eq!(structure.equality_vars, vec![vec![0, 3]]);
        assert_eq!(structure.inequality_vars, vec![vec![1]]);
        assert_eq!(structure.objective_vars, vec![4]);
        assert_eq!(structure.active_vars, vec![0, 1, 3, 4]);
        assert_eq!(structure.jacobian_nnz, 3);
        // Cached: the same Arc comes back.
        assert!(Arc::ptr_eq(&structure, &problem.structure()));
        // Adding a constraint invalidates the fingerprint: a fresh analysis
        // is returned instead of the stale cache.
        problem.inequalities.push(QuadraticForm::variable(2));
        let refreshed = problem.structure();
        assert_eq!(refreshed.inequality_vars.len(), 2);
        assert_eq!(refreshed.active_vars, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn constant_objectives_do_not_defeat_the_structure_cache() {
        // A constant objective touches no variables; the fingerprint must
        // still recognize the cached analysis as fresh (an empty
        // `objective_vars` is not the same as "no objective").
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm::variable(0));
        problem.objective = Some(QuadraticForm::constant(1.5));
        let first = problem.structure();
        assert!(first.has_objective);
        assert!(first.objective_vars.is_empty());
        assert!(Arc::ptr_eq(&first, &problem.structure()));
    }

    #[test]
    fn problem_violation_includes_all_constraint_classes() {
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(1));
        problem.set_bound(1, -2.0, 2.0);
        assert!(problem.is_feasible(&[1.0, 0.5], 1e-9));
        assert!(!problem.is_feasible(&[0.0, 0.5], 1e-9));
        assert!(!problem.is_feasible(&[1.0, -0.5], 1e-9));
        assert!((problem.max_violation(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        let mut x = vec![5.0, -7.0];
        problem.clamp(&mut x);
        assert_eq!(x, vec![5.0, -2.0]);
    }
}
