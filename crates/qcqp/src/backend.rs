//! The pluggable solver back-end abstraction.
//!
//! The paper hands its quadratic systems to a single commercial QCLP solver
//! (LOQO). This reproduction instead treats Step 4 as a pluggable stage: any
//! type implementing [`QcqpBackend`] can solve the numeric problems produced
//! by the reduction, and the synthesis pipeline in the `polyinv` crate is
//! written purely against this trait. Two implementations ship here:
//!
//! * [`LmSolver`] (`"lm"`) — projected Levenberg–Marquardt on the equality
//!   residuals, the default for Cholesky-encoded systems;
//! * [`AlmSolver`] (`"penalty"`) — the augmented-Lagrangian penalty solver,
//!   which scales to larger systems at the cost of slower convergence.
//!
//! New back-ends plug in without touching the pipeline: implement the trait
//! and hand an `Arc` of the solver to `Pipeline::with_backend`.

use std::sync::Arc;

use crate::lm::{LmOptions, LmSolver};
use crate::penalty::{AlmOptions, AlmSolver, SolveOutcome};
use crate::problem::Problem;

/// A numerical solver for quadratically-constrained feasibility problems.
///
/// Implementations must be deterministic for a fixed configuration (the
/// multi-start seeds are part of the configuration), and `Send + Sync` so
/// that restarts and benchmark rows can run on worker threads.
pub trait QcqpBackend: std::fmt::Debug + Send + Sync {
    /// A short stable identifier (`"lm"`, `"penalty"`, …) used in reports.
    fn name(&self) -> &'static str;

    /// Attempts to find a feasible point of `problem`, optionally starting
    /// from `warm_start`. Must always return the best point found, even
    /// when infeasible.
    fn solve(&self, problem: &Problem, warm_start: Option<&[f64]>) -> SolveOutcome;
}

impl QcqpBackend for LmSolver {
    fn name(&self) -> &'static str {
        "lm"
    }

    fn solve(&self, problem: &Problem, warm_start: Option<&[f64]>) -> SolveOutcome {
        LmSolver::solve(self, problem, warm_start)
    }
}

impl QcqpBackend for AlmSolver {
    fn name(&self) -> &'static str {
        "penalty"
    }

    fn solve(&self, problem: &Problem, warm_start: Option<&[f64]>) -> SolveOutcome {
        AlmSolver::solve(self, problem, warm_start)
    }
}

/// The default back-end used by weak synthesis: LM with the multi-start
/// configuration the evaluation tables were produced with.
pub fn default_backend() -> Arc<dyn QcqpBackend> {
    Arc::new(LmSolver::new(LmOptions {
        max_iterations: 400,
        restarts: 4,
        tolerance: 1e-6,
        ..LmOptions::default()
    }))
}

/// Looks a back-end up by its stable name (`"lm"` or `"penalty"`), with
/// default options. Returns `None` for unknown names.
pub fn backend_by_name(name: &str) -> Option<Arc<dyn QcqpBackend>> {
    match name {
        "lm" => Some(default_backend()),
        "penalty" | "alm" => Some(Arc::new(AlmSolver::new(AlmOptions::default()))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QuadraticForm;
    use crate::SolveStatus;

    /// The bilinear system x·y = 6, x − y = 1, x ≥ 0 → (3, 2).
    fn bilinear_problem() -> Problem {
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -6.0,
            linear: Vec::new(),
            quadratic: vec![(0, 1, 1.0)],
        });
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0), (1, -1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(0));
        problem
    }

    #[test]
    fn both_named_backends_solve_the_same_problem() {
        let problem = bilinear_problem();
        for name in ["lm", "penalty"] {
            let backend = backend_by_name(name).unwrap();
            assert_eq!(backend.name(), if name == "lm" { "lm" } else { "penalty" });
            let outcome = backend.solve(&problem, None);
            assert_eq!(outcome.status, SolveStatus::Feasible, "{name}");
            assert!((outcome.assignment[0] - 3.0).abs() < 0.05, "{name}");
        }
    }

    #[test]
    fn unknown_backend_names_are_rejected() {
        assert!(backend_by_name("loqo").is_none());
    }

    #[test]
    fn trait_objects_solve_through_a_shared_handle() {
        let backend: Arc<dyn QcqpBackend> = default_backend();
        let outcome = backend.solve(&bilinear_problem(), None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
    }
}
