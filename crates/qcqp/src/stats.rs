//! Solver execution statistics.
//!
//! Every [`SolveOutcome`](crate::SolveOutcome) carries a [`SolverStats`]
//! describing *how* the point was found: iteration and restart counts, the
//! final least-squares residual, the sparsity of the Jacobian / normal
//! matrix / factor, and the wall-clock split between numeric factorization
//! and triangular solves. The synthesis pipeline threads these through to
//! `SynthesisReport`s and the benchmark snapshots, so the solve-stage cost
//! is visible (and regressable) per benchmark row.

/// Statistics of one solver run (aggregated over its restarts).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverStats {
    /// Total inner iterations across all restarts.
    pub iterations: usize,
    /// Number of restarts actually run (early exit may skip some).
    pub restarts: usize,
    /// Sum-of-squares residual `‖r(x)‖²` at the returned point.
    pub final_residual: f64,
    /// Stored entries of the (sparse) Jacobian pattern — 0 for solvers that
    /// never form one.
    pub nnz_jacobian: usize,
    /// Stored entries of the normal matrix `JᵀJ` (lower triangle).
    pub nnz_jtj: usize,
    /// Entries of the LDLᵀ factor `L` (unit diagonal included).
    pub nnz_factor: usize,
    /// Number of numeric factorizations performed.
    pub factorizations: usize,
    /// Wall-clock seconds spent in numeric factorization.
    pub factor_seconds: f64,
    /// Wall-clock seconds spent in triangular solves.
    pub solve_seconds: f64,
    /// Wall-clock seconds spent evaluating residuals and scattering the
    /// normal equations (the chunk-parallel part of an iteration).
    pub eval_seconds: f64,
    /// Worker threads used for residual evaluation / factorization (1 =
    /// fully serial iteration core).
    pub threads: usize,
}

impl SolverStats {
    /// Folds the per-restart counters of `other` into `self` (sparsity
    /// fields describe the shared pattern and are left untouched).
    pub fn absorb_restart(&mut self, other: &SolverStats) {
        self.iterations += other.iterations;
        self.restarts += other.restarts;
        self.factorizations += other.factorizations;
        self.factor_seconds += other.factor_seconds;
        self.solve_seconds += other.solve_seconds;
        self.eval_seconds += other.eval_seconds;
    }
}
