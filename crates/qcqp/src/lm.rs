//! A projected Levenberg–Marquardt solver for quadratic constraint systems.
//!
//! The quadratic systems produced by the paper's Cholesky encoding have a
//! convenient shape: all hard constraints are quadratic *equalities*, and the
//! only inequalities are simple lower bounds on individual variables
//! (diagonal Cholesky entries and positivity witnesses). Finding a feasible
//! point is therefore a nonlinear least-squares problem
//! `min ‖r(x)‖²` (with `r` the vector of equality residuals and inequality
//! hinges) over a box — exactly the setting in which Levenberg–Marquardt
//! with projection onto the box excels.
//!
//! The systems are also >99% sparse (each residual touches a handful of the
//! thousands of unknowns), so the whole inner loop runs on the sparse
//! substrate of `polyinv-arith`: the normal matrix `JᵀJ` is accumulated
//! directly from sparse Jacobian rows into a fixed [`JtjPattern`] (no dense
//! `m×n` Jacobian, no dense transpose, no dense product is ever formed), and
//! the damped system is solved by a sparse LDLᵀ whose fill-reducing ordering
//! and symbolic analysis are computed **once per problem** and shared by all
//! restarts — only the numeric factorization runs per iteration. Solver
//! memory is `O(nnz)` instead of the former `O(m·n)`.

use std::time::Instant;

use polyinv_arith::sparse::{JtjPattern, JtjScratch, SymbolicLdl};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::penalty::{SolveOutcome, SolveStatus};
use crate::problem::{Problem, QuadraticForm};
use crate::stats::SolverStats;

/// Configuration of the Levenberg–Marquardt solver.
#[derive(Debug, Clone)]
pub struct LmOptions {
    /// Maximum number of LM iterations per restart.
    pub max_iterations: usize,
    /// Feasibility tolerance declaring success (maximum constraint
    /// violation).
    pub tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Factor by which λ grows after a rejected step.
    pub lambda_up: f64,
    /// Factor by which λ shrinks after an accepted step.
    pub lambda_down: f64,
    /// Number of random restarts.
    pub restarts: usize,
    /// Random seed.
    pub seed: u64,
    /// Scale of the random initialization.
    pub init_scale: f64,
    /// Weight given to the objective (if any) relative to the constraint
    /// residuals; the objective is treated as a soft residual
    /// `objective_weight · objective(x)` so that among near-feasible points
    /// lower objectives are preferred.
    pub objective_weight: f64,
    /// Whether the restarts may fan out over worker threads. Callers that
    /// already run *inside* a parallel region (the certificate checker's
    /// per-pair fan-out, strong synthesis' per-attempt fan-out) set this to
    /// `false` to avoid oversubscribing the CPU with nested waves.
    pub parallel_restarts: bool,
    /// Number of consecutive iterations without a meaningful improvement of
    /// the best violation (relative decrease below 0.1%) after which a
    /// restart bails out with its best-so-far point. `0` disables stall
    /// detection.
    pub stall_iterations: usize,
    /// Wall-clock budget in seconds for the whole solve, shared across all
    /// restarts; any restart past the deadline stops at the next iteration
    /// boundary and returns its best-so-far point. `0` disables the
    /// deadline.
    pub max_seconds: f64,
    /// Worker threads for the *intra-iteration* parallelism (chunked
    /// residual evaluation and subtree-parallel factorization). `0` lets the
    /// [`ThreadBudget`](crate::ThreadBudget) arbiter decide from the row
    /// count and the global `POLYINV_THREADS` budget; an explicit value
    /// pins it (the criterion benches sweep 1/2/4/8 this way).
    ///
    /// The thread count never changes *what* is computed — chunk boundaries
    /// and merge order are functions of the row count alone — so solver
    /// outputs are byte-identical across values of this knob.
    pub eval_threads: usize,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iterations: 250,
            tolerance: 1e-7,
            initial_lambda: 1e-3,
            lambda_up: 7.0,
            lambda_down: 0.35,
            restarts: 3,
            seed: 0x1a2b3c,
            init_scale: 0.3,
            objective_weight: 0.0,
            parallel_restarts: true,
            stall_iterations: 40,
            max_seconds: 0.0,
            eval_threads: 0,
        }
    }
}

/// Relative violation decrease below which an iteration counts as stalled:
/// the kind of 1e-6-per-iteration trickle that burned minutes on a single
/// ϒ rung without ever reaching feasibility.
const STALL_RELATIVE_IMPROVEMENT: f64 = 1e-3;

/// The per-problem sparse workspace: the symbolic side of the solve,
/// computed once and shared (immutably) by every restart. The Jacobian's
/// sparsity pattern is fixed by the [`Problem`], so the `JᵀJ` pattern, the
/// fill-reducing ordering and the symbolic factorization never change —
/// only values do.
///
/// [`LmSolver::solve`] builds one per call; callers that solve a sequence
/// of structurally identical problems (the orchestrator's polish rounds,
/// repeated rungs with unchanged sparsity) build it once with
/// [`LmWorkspace::build`], check [`matches`](LmWorkspace::matches), and pass
/// it to [`LmSolver::solve_with_workspace`] to skip the symbolic analysis.
#[derive(Debug)]
pub struct LmWorkspace {
    /// The problem's sparsity metadata, fetched once per solve.
    structure: std::sync::Arc<crate::problem::ProblemStructure>,
    /// Symbolic `JᵀJ`: pattern plus per-row scatter positions.
    pattern: JtjPattern,
    /// Symbolic LDLᵀ of the (damped) normal matrix.
    symbolic: SymbolicLdl,
    /// Whether the objective contributes a soft residual row.
    objective_row: bool,
}

impl LmWorkspace {
    /// Runs the symbolic analysis for `problem`: `JᵀJ` pattern, ordering,
    /// elimination tree.
    pub fn build(problem: &Problem, objective_weight: f64) -> Self {
        let structure = problem.structure();
        let objective_row = problem.objective.is_some() && objective_weight > 0.0;
        let mut rows: Vec<Vec<usize>> =
            Vec::with_capacity(structure.equality_vars.len() + structure.inequality_vars.len() + 1);
        rows.extend(structure.equality_vars.iter().cloned());
        rows.extend(structure.inequality_vars.iter().cloned());
        if objective_row {
            rows.push(structure.objective_vars.clone());
        }
        let pattern = JtjPattern::new(problem.num_vars, rows);
        let (row_ptr, col_idx) = pattern.pattern();
        let symbolic = SymbolicLdl::analyze(problem.num_vars, row_ptr, col_idx);
        LmWorkspace {
            structure,
            pattern,
            symbolic,
            objective_row,
        }
    }

    /// Whether this workspace was built for a problem with exactly the same
    /// sparsity structure (and objective-row decision) as `problem` — the
    /// reuse precondition of [`LmSolver::solve_with_workspace`].
    pub fn matches(&self, problem: &Problem, objective_weight: f64) -> bool {
        let objective_row = problem.objective.is_some() && objective_weight > 0.0;
        if self.objective_row != objective_row || self.pattern.dimension() != problem.num_vars {
            return false;
        }
        let structure = problem.structure();
        self.structure.equality_vars == structure.equality_vars
            && self.structure.inequality_vars == structure.inequality_vars
            && (!objective_row || self.structure.objective_vars == structure.objective_vars)
    }

    /// The symbolic `JᵀJ` pattern.
    pub fn pattern(&self) -> &JtjPattern {
        &self.pattern
    }

    /// The symbolic LDLᵀ analysis.
    pub fn symbolic(&self) -> &SymbolicLdl {
        &self.symbolic
    }

    /// The sparsity statistics of this workspace.
    fn stats_skeleton(&self) -> SolverStats {
        SolverStats {
            nnz_jacobian: self.pattern.jacobian_nnz(),
            nnz_jtj: self.pattern.nnz(),
            nnz_factor: self.symbolic.nnz_factor(),
            ..SolverStats::default()
        }
    }
}

/// The projected Levenberg–Marquardt solver.
#[derive(Debug, Clone, Default)]
pub struct LmSolver {
    options: LmOptions,
}

impl LmSolver {
    /// Creates a solver with the given options.
    pub fn new(options: LmOptions) -> Self {
        LmSolver { options }
    }

    /// The solver's options (callers managing their own
    /// [`LmWorkspace`] cache need the objective weight to check
    /// [`LmWorkspace::matches`]).
    pub fn options(&self) -> &LmOptions {
        &self.options
    }

    /// Solves the problem, optionally starting from a warm-start point.
    ///
    /// The multi-start restarts are independent (restart `k` seeds its own
    /// generator with `seed + k`) and run **in parallel** on worker threads;
    /// the selection among their outcomes is deterministic — the
    /// lowest-index feasible restart wins, otherwise the restart with the
    /// smallest violation — so the result is identical to the sequential
    /// first-feasible-wins policy. The sparse workspace (pattern, ordering,
    /// symbolic factorization) is computed once here and shared by all
    /// restarts.
    ///
    /// PSD blocks are handled by projection after every accepted step (they
    /// are absent from Cholesky-encoded systems, which are the intended
    /// input).
    pub fn solve(&self, problem: &Problem, warm_start: Option<&[f64]>) -> SolveOutcome {
        let workspace = LmWorkspace::build(problem, self.options.objective_weight);
        self.solve_with_workspace(problem, &workspace, warm_start)
    }

    /// Like [`solve`](Self::solve), but reusing a prebuilt symbolic
    /// workspace. The caller must ensure
    /// [`workspace.matches(problem, …)`](LmWorkspace::matches): the
    /// orchestrator uses this to hoist the `JᵀJ` pattern and LDLᵀ analysis
    /// out of repeated solves over structurally identical systems.
    pub fn solve_with_workspace(
        &self,
        problem: &Problem,
        workspace: &LmWorkspace,
        warm_start: Option<&[f64]>,
    ) -> SolveOutcome {
        debug_assert!(
            workspace.matches(problem, self.options.objective_weight),
            "workspace reused across structurally different problems"
        );
        let restarts = self.options.restarts.max(1);
        // The thread-budget arbiter: restart-level and intra-iteration
        // parallelism multiply, so the global budget goes to exactly one
        // axis — inside the iteration for big systems, across restarts for
        // small ones. An explicit `eval_threads` wins over the arbiter.
        let rows = problem.equalities.len() + problem.inequalities.len();
        let budget = crate::par::ThreadBudget::for_rows(rows);
        let eval_threads = if self.options.eval_threads > 0 {
            self.options.eval_threads
        } else {
            budget.eval_threads
        };
        let restart_workers = if self.options.parallel_restarts {
            budget.restart_threads
        } else {
            1
        };
        // The wall-clock budget covers the whole solve: every restart —
        // parallel or sequential — checks its deadline against this one
        // start instant, so serial fallback cannot multiply the budget by
        // the restart count. `restart_workers == 1` degrades to the classic
        // sequential first-feasible-wins loop.
        let started = Instant::now();
        let outcomes = crate::par::parallel_indexed_until_bounded(
            restarts,
            restart_workers,
            |restart| {
                self.run_restart(problem, workspace, warm_start, restart, started, eval_threads)
            },
            |outcome| outcome.status == SolveStatus::Feasible,
        );
        // Aggregate the work done across restarts onto the winning outcome.
        let mut stats = workspace.stats_skeleton();
        for outcome in &outcomes {
            stats.absorb_restart(&outcome.stats);
        }
        stats.threads = eval_threads.max(restart_workers.min(restarts)).max(1);
        let mut best = Self::pick_best(outcomes);
        stats.final_residual = best.stats.final_residual;
        best.stats = stats;
        best
    }

    /// Runs one independent restart: restart 0 consumes the warm start, all
    /// others draw a fresh random initialization from their own generator.
    #[allow(clippy::too_many_arguments)]
    fn run_restart(
        &self,
        problem: &Problem,
        workspace: &LmWorkspace,
        warm_start: Option<&[f64]>,
        restart: usize,
        started: Instant,
        eval_threads: usize,
    ) -> SolveOutcome {
        let mut rng = StdRng::seed_from_u64(self.options.seed.wrapping_add(restart as u64));
        let mut x: Vec<f64> = match (restart, warm_start) {
            (0, Some(start)) if start.len() == problem.num_vars => start.to_vec(),
            _ => (0..problem.num_vars)
                .map(|_| rng.random_range(-self.options.init_scale..self.options.init_scale))
                .collect(),
        };
        problem.clamp(&mut x);
        self.solve_from(problem, workspace, &mut x, started, eval_threads)
    }

    /// Deterministic selection: the first feasible outcome in restart order,
    /// otherwise the first outcome attaining the minimum violation. A
    /// non-finite violation (NaN from an overflowing residual) compares as
    /// worst, so it can never displace a finite candidate.
    fn pick_best(outcomes: Vec<SolveOutcome>) -> SolveOutcome {
        let finite_or_inf = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
        let mut best: Option<SolveOutcome> = None;
        for outcome in outcomes {
            let better = match &best {
                None => true,
                Some(current) => {
                    (outcome.status == SolveStatus::Feasible
                        && current.status != SolveStatus::Feasible)
                        || (outcome.status == current.status
                            && finite_or_inf(outcome.violation) < finite_or_inf(current.violation))
                }
            };
            if better {
                best = Some(outcome);
            }
            if best
                .as_ref()
                .is_some_and(|o| o.status == SolveStatus::Feasible)
            {
                break;
            }
        }
        // `solve` clamps `restarts` to at least one, so `outcomes` is never
        // empty here.
        best.expect("at least one restart runs")
    }

    fn solve_from(
        &self,
        problem: &Problem,
        ws: &LmWorkspace,
        x: &mut Vec<f64>,
        started: Instant,
        eval_threads: usize,
    ) -> SolveOutcome {
        let opts = &self.options;
        let n = problem.num_vars;
        let mut lambda = opts.initial_lambda;
        let mut stats = SolverStats {
            restarts: 1,
            ..SolverStats::default()
        };

        let objective_at = |point: &[f64]| {
            problem
                .objective
                .as_ref()
                .map(|o| o.eval(point))
                .unwrap_or(0.0)
        };
        let minimizing = problem.objective.is_some() && opts.objective_weight > 0.0;
        // A NaN objective or violation (e.g. an objective evaluating to NaN
        // at the start point) must not poison best-candidate selection:
        // every `<` comparison against NaN is false, which would freeze
        // `best_x` at the initial point forever. Treat non-finite as +inf.
        let finite_or_inf = |v: f64| if v.is_finite() { v } else { f64::INFINITY };

        // Per-restart numeric buffers; the symbolic side lives in `ws`.
        let mut eval = Evaluator::new(problem, ws, opts.objective_weight, eval_threads);
        let mut numeric = ws.symbolic.numeric();
        let mut step = vec![0.0; n];
        let mut diag_add = vec![0.0; n];
        let mut candidate = vec![0.0; n];

        let mut best_x = x.clone();
        let mut best_violation = {
            let eval_start = Instant::now();
            let (_, constraint_violation) = eval.residuals_only(x);
            stats.eval_seconds += eval_start.elapsed().as_secs_f64();
            finite_or_inf(full_violation(problem, x, constraint_violation))
        };
        let mut best_objective = finite_or_inf(objective_at(x));

        let mut stalled = 0usize;
        for _ in 0..opts.max_iterations {
            if opts.max_seconds > 0.0 && started.elapsed().as_secs_f64() >= opts.max_seconds {
                break;
            }
            stats.iterations += 1;
            // One pass evaluates the residuals and scatters the sparse
            // Jacobian rows straight into `JᵀJ` and `Jᵀr`.
            let eval_start = Instant::now();
            let (cost, constraint_violation) = eval.residuals_and_normal(x);
            stats.eval_seconds += eval_start.elapsed().as_secs_f64();
            let mut current_violation = full_violation(problem, x, constraint_violation);
            if !minimizing && current_violation <= opts.tolerance {
                best_x = x.clone();
                best_violation = current_violation;
                break;
            }
            if eval.rows == 0 {
                break;
            }

            // Try steps with increasing damping until one reduces the cost.
            let mut accepted = false;
            for _ in 0..8 {
                let diag = ws.pattern.diag_positions();
                for i in 0..n {
                    diag_add[i] = lambda * (1.0 + eval.jtj_values[diag[i]]);
                }
                stats.factorizations += 1;
                let factor_start = Instant::now();
                let factored = ws.symbolic.factor_parallel(
                    &eval.jtj_values,
                    &diag_add,
                    &mut numeric,
                    eval_threads,
                );
                stats.factor_seconds += factor_start.elapsed().as_secs_f64();
                if !factored {
                    lambda *= opts.lambda_up;
                    continue;
                }
                step.copy_from_slice(&eval.jtr);
                let solve_start = Instant::now();
                ws.symbolic.solve(&mut numeric, &mut step);
                stats.solve_seconds += solve_start.elapsed().as_secs_f64();

                candidate.copy_from_slice(x);
                for i in 0..n {
                    candidate[i] -= step[i];
                }
                problem.clamp(&mut candidate);
                for block in &problem.psd {
                    block.project(&mut candidate);
                }
                // Residuals-only evaluation: the Jacobian is not needed to
                // score a candidate, and its constraint violation falls out
                // of the same pass (no separate `max_violation` sweep).
                let eval_start = Instant::now();
                let (candidate_cost, candidate_constraint_violation) =
                    eval.residuals_only(&candidate);
                stats.eval_seconds += eval_start.elapsed().as_secs_f64();
                // Skip non-finite candidate costs outright: accepting a
                // NaN/inf point would derail every later comparison.
                if candidate_cost.is_finite() && candidate_cost < cost {
                    std::mem::swap(x, &mut candidate);
                    current_violation = full_violation(problem, x, candidate_constraint_violation);
                    lambda = (lambda * opts.lambda_down).max(1e-12);
                    accepted = true;
                    break;
                }
                lambda *= opts.lambda_up;
            }
            let violation = finite_or_inf(current_violation);
            let objective = finite_or_inf(objective_at(x));
            let better = if violation <= opts.tolerance && best_violation <= opts.tolerance {
                objective < best_objective
            } else {
                violation < best_violation
            };
            // Stall detection: an iteration makes progress only when it
            // shaves a meaningful relative slice off the best violation (or,
            // in minimizing mode, improves the objective among feasible
            // points). Accepted steps whose cost decreases while the
            // violation flatlines used to spin for the full iteration
            // budget.
            let progressed = violation < best_violation * (1.0 - STALL_RELATIVE_IMPROVEMENT)
                || (minimizing
                    && violation <= opts.tolerance
                    && best_violation <= opts.tolerance
                    && objective < best_objective);
            if better {
                best_violation = violation;
                best_objective = objective;
                best_x = x.clone();
            }
            if progressed {
                stalled = 0;
            } else {
                stalled += 1;
            }
            if !accepted {
                break;
            }
            if opts.stall_iterations > 0 && stalled >= opts.stall_iterations {
                break;
            }
        }

        stats.final_residual = eval.residuals_only(&best_x).0;
        let violation = best_violation;
        let objective = problem
            .objective
            .as_ref()
            .map(|o| o.eval(&best_x))
            .unwrap_or(0.0);
        SolveOutcome {
            assignment: best_x,
            violation,
            objective,
            status: if violation <= opts.tolerance {
                SolveStatus::Feasible
            } else {
                SolveStatus::Infeasible
            },
            iterations: stats.iterations,
            stats,
        }
    }
}

/// The worst violation over *all* constraint classes, given the worst
/// equality/inequality violation already measured by a residual pass.
/// Matches [`Problem::max_violation`] without re-evaluating every form.
fn full_violation(problem: &Problem, x: &[f64], constraint_violation: f64) -> f64 {
    let mut worst = constraint_violation.max(0.0);
    for (i, &(lo, hi)) in problem.bounds.iter().enumerate() {
        worst = worst.max(lo - x[i]).max(x[i] - hi);
    }
    for block in &problem.psd {
        worst = worst.max((-block.min_eigenvalue(x)).max(0.0));
    }
    worst
}

/// Residual-row count at which the evaluator switches from the plain serial
/// pass to the chunked accumulation. The switch depends **only** on the row
/// count — never on the thread budget — so a given problem always takes the
/// same numerical path regardless of `POLYINV_THREADS`.
const CHUNKED_ROW_THRESHOLD: usize = crate::par::PAR_ROW_THRESHOLD;

/// Fixed number of chunks in the chunked evaluation. Chunk boundaries and
/// the merge order are functions of this constant and the row count alone,
/// which is what keeps the accumulated sums byte-identical across worker
/// counts.
const EVAL_CHUNKS: usize = 16;

/// One chunk's private accumulation: merged into the shared buffers in
/// chunk-index order after every pass (and cleared by the merge).
struct ChunkBuf {
    jtj: Vec<f64>,
    jtr: Vec<f64>,
    cost: f64,
    violation: f64,
}

/// Per-restart residual/Jacobian evaluator: owns the numeric buffers and
/// scatters sparse gradient rows directly into the `JᵀJ` values and `Jᵀr`.
///
/// Systems with at least [`CHUNKED_ROW_THRESHOLD`] residual rows are
/// evaluated in [`EVAL_CHUNKS`] fixed row ranges that worker threads pick up
/// dynamically; each chunk accumulates into a private buffer and the buffers
/// are merged in chunk-index order, so the result does not depend on the
/// worker count (including 1). Smaller systems keep the original serial
/// pass untouched.
pub struct Evaluator<'a> {
    problem: &'a Problem,
    ws: &'a LmWorkspace,
    objective_weight: f64,
    /// Number of Jacobian rows (equalities + inequalities + soft objective).
    rows: usize,
    /// Worker threads for the chunked pass (1 = fill chunks sequentially).
    eval_threads: usize,
    /// Fixed chunk boundaries; empty = serial mode.
    chunk_ranges: Vec<std::ops::Range<usize>>,
    /// Per-chunk private accumulation buffers. The mutexes are uncontended
    /// (each chunk is claimed by exactly one worker per pass); they exist to
    /// hand distinct `Vec` elements to distinct threads safely.
    chunk_bufs: Vec<std::sync::Mutex<ChunkBuf>>,
    /// Accumulated lower-triangle `JᵀJ` values (layout: `ws.pattern`).
    jtj_values: Vec<f64>,
    /// Accumulated `Jᵀr`.
    jtr: Vec<f64>,
    /// Dense gradient scatter buffer (only touched entries are written and
    /// cleared).
    grad: Vec<f64>,
    /// The current row's sparse gradient entries.
    entries: Vec<(usize, f64)>,
    scratch: JtjScratch,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator. `eval_threads` caps the workers of the chunked
    /// pass; it has no influence on *what* is computed.
    pub fn new(
        problem: &'a Problem,
        ws: &'a LmWorkspace,
        objective_weight: f64,
        eval_threads: usize,
    ) -> Self {
        let rows =
            problem.equalities.len() + problem.inequalities.len() + usize::from(ws.objective_row);
        let chunked = rows >= CHUNKED_ROW_THRESHOLD;
        let chunk_ranges: Vec<std::ops::Range<usize>> = if chunked {
            let size = rows.div_ceil(EVAL_CHUNKS);
            (0..EVAL_CHUNKS)
                .map(|c| (c * size).min(rows)..((c + 1) * size).min(rows))
                .collect()
        } else {
            Vec::new()
        };
        let chunk_bufs = chunk_ranges
            .iter()
            .map(|_| {
                std::sync::Mutex::new(ChunkBuf {
                    jtj: ws.pattern.values_buffer(),
                    jtr: vec![0.0; problem.num_vars],
                    cost: 0.0,
                    violation: 0.0,
                })
            })
            .collect();
        Evaluator {
            problem,
            ws,
            objective_weight,
            rows,
            eval_threads: eval_threads.max(1),
            chunk_ranges,
            chunk_bufs,
            jtj_values: ws.pattern.values_buffer(),
            jtr: vec![0.0; problem.num_vars],
            grad: vec![0.0; problem.num_vars],
            entries: Vec::new(),
            scratch: JtjScratch::default(),
        }
    }

    /// The accumulated lower-triangle `JᵀJ` values of the last
    /// [`residuals_and_normal`](Self::residuals_and_normal) pass.
    pub fn jtj_values(&self) -> &[f64] {
        &self.jtj_values
    }

    /// The accumulated `Jᵀr` of the last pass.
    pub fn jtr(&self) -> &[f64] {
        &self.jtr
    }

    /// Evaluates the residual vector at `x` while accumulating `JᵀJ` and
    /// `Jᵀr` from the sparse rows. Returns the sum-of-squares cost and the
    /// worst equality/inequality violation (a by-product of the same pass).
    pub fn residuals_and_normal(&mut self, x: &[f64]) -> (f64, f64) {
        self.jtj_values.fill(0.0);
        self.jtr.fill(0.0);
        // The workspace fetched the structure once per solve; re-borrowing
        // through an Arc clone keeps `self` free for the scatter calls.
        let structure = std::sync::Arc::clone(&self.ws.structure);
        if self.chunk_ranges.is_empty() {
            return accumulate_rows(
                self.problem,
                &structure,
                self.ws,
                self.objective_weight,
                0..self.rows,
                x,
                &mut self.jtj_values,
                &mut self.jtr,
                &mut self.grad,
                &mut self.entries,
                &mut self.scratch,
            );
        }
        let workers = self.eval_threads.min(self.chunk_ranges.len());
        if workers <= 1 {
            // One worker: fill each chunk in order with the evaluator's own
            // scratch. Same buffers, same merge — bitwise identical to the
            // multi-worker path.
            for (range, slot) in self.chunk_ranges.iter().zip(&mut self.chunk_bufs) {
                let buf = slot.get_mut().expect("chunk mutex poisoned");
                let (cost, violation) = accumulate_rows(
                    self.problem,
                    &structure,
                    self.ws,
                    self.objective_weight,
                    range.clone(),
                    x,
                    &mut buf.jtj,
                    &mut buf.jtr,
                    &mut self.grad,
                    &mut self.entries,
                    &mut self.scratch,
                );
                buf.cost = cost;
                buf.violation = violation;
            }
        } else {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let problem = self.problem;
            let ws = self.ws;
            let objective_weight = self.objective_weight;
            let chunk_ranges = &self.chunk_ranges;
            let chunk_bufs = &self.chunk_bufs;
            let structure = &structure;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| {
                        let mut grad = vec![0.0; problem.num_vars];
                        let mut entries = Vec::new();
                        let mut scratch = JtjScratch::default();
                        loop {
                            let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if c >= chunk_ranges.len() {
                                return;
                            }
                            let mut buf = chunk_bufs[c].lock().expect("chunk mutex poisoned");
                            let buf = &mut *buf;
                            let (cost, violation) = accumulate_rows(
                                problem,
                                structure,
                                ws,
                                objective_weight,
                                chunk_ranges[c].clone(),
                                x,
                                &mut buf.jtj,
                                &mut buf.jtr,
                                &mut grad,
                                &mut entries,
                                &mut scratch,
                            );
                            buf.cost = cost;
                            buf.violation = violation;
                        }
                    });
                }
            });
        }
        // Deterministic reduction: merge in chunk-index order, clearing each
        // partial for the next pass (cheaper than a separate zeroing sweep,
        // and the cleared buffer is what the next iteration expects).
        let mut cost = 0.0;
        let mut violation = 0.0f64;
        for slot in &mut self.chunk_bufs {
            let buf = slot.get_mut().expect("chunk mutex poisoned");
            for (t, p) in self.jtj_values.iter_mut().zip(buf.jtj.iter_mut()) {
                *t += *p;
                *p = 0.0;
            }
            for (t, p) in self.jtr.iter_mut().zip(buf.jtr.iter_mut()) {
                *t += *p;
                *p = 0.0;
            }
            cost += buf.cost;
            violation = violation.max(buf.violation);
        }
        (cost, violation)
    }

    /// Evaluates only the residuals at `x` (no Jacobian work): the
    /// sum-of-squares cost plus the worst equality/inequality violation.
    /// Used to score step candidates, where the former implementation
    /// computed and discarded full Jacobian rows.
    pub fn residuals_only(&self, x: &[f64]) -> (f64, f64) {
        if self.chunk_ranges.is_empty() {
            return residual_rows(self.problem, self.ws, self.objective_weight, 0..self.rows, x);
        }
        let workers = self.eval_threads.min(self.chunk_ranges.len());
        let per_chunk: Vec<(f64, f64)> = if workers <= 1 {
            self.chunk_ranges
                .iter()
                .map(|range| {
                    residual_rows(self.problem, self.ws, self.objective_weight, range.clone(), x)
                })
                .collect()
        } else {
            crate::par::parallel_indexed_until_bounded(
                self.chunk_ranges.len(),
                workers,
                |c| {
                    residual_rows(
                        self.problem,
                        self.ws,
                        self.objective_weight,
                        self.chunk_ranges[c].clone(),
                        x,
                    )
                },
                |_| false,
            )
        };
        // Fold in chunk-index order: same sum sequence for any worker count.
        let mut cost = 0.0;
        let mut violation = 0.0f64;
        for (chunk_cost, chunk_violation) in per_chunk {
            cost += chunk_cost;
            violation = violation.max(chunk_violation);
        }
        (cost, violation)
    }
}

/// Collects the sparse gradient of `scale · form` at `x` into `entries`,
/// using only the form's touched variables.
fn gradient_entries(
    form: &QuadraticForm,
    vars: &[usize],
    x: &[f64],
    scale: f64,
    grad: &mut [f64],
    entries: &mut Vec<(usize, f64)>,
) {
    for &v in vars {
        grad[v] = 0.0;
    }
    form.add_gradient(x, grad, scale);
    entries.clear();
    for &v in vars {
        let g = grad[v];
        if g != 0.0 {
            entries.push((v, g));
        }
    }
}

/// Evaluates the residual rows of `range` (global row indices: equalities,
/// then inequalities, then the soft objective row) at `x`, accumulating
/// `JᵀJ` and `Jᵀr` into the given buffers. Returns the range's
/// sum-of-squares cost and worst violation.
///
/// Both the serial pass (one range covering every row) and each chunk of the
/// parallel pass run exactly this code, so the two modes differ only in how
/// partial sums are grouped.
#[allow(clippy::too_many_arguments)]
fn accumulate_rows(
    problem: &Problem,
    structure: &crate::problem::ProblemStructure,
    ws: &LmWorkspace,
    objective_weight: f64,
    range: std::ops::Range<usize>,
    x: &[f64],
    jtj: &mut [f64],
    jtr: &mut [f64],
    grad: &mut [f64],
    entries: &mut Vec<(usize, f64)>,
    scratch: &mut JtjScratch,
) -> (f64, f64) {
    let num_eq = problem.equalities.len();
    let num_ineq = problem.inequalities.len();
    let mut cost = 0.0;
    let mut violation = 0.0f64;
    for row in range {
        if row < num_eq {
            let eq = &problem.equalities[row];
            let vars = &structure.equality_vars[row];
            let r = eq.eval(x);
            cost += r * r;
            violation = violation.max(r.abs());
            gradient_entries(eq, vars, x, 1.0, grad, entries);
            ws.pattern.accumulate_row(row, entries, jtj, scratch);
            for &(i, g) in entries.iter() {
                jtr[i] += g * r;
            }
        } else if row < num_eq + num_ineq {
            let k = row - num_eq;
            let ineq = &problem.inequalities[k];
            let value = ineq.eval(x);
            if value < 0.0 {
                let r = -value;
                cost += r * r;
                violation = violation.max(r);
                gradient_entries(ineq, &structure.inequality_vars[k], x, -1.0, grad, entries);
                ws.pattern.accumulate_row(row, entries, jtj, scratch);
                for &(i, g) in entries.iter() {
                    jtr[i] += g * r;
                }
            }
        } else {
            let objective = problem.objective.as_ref().expect("objective row");
            let value = objective.eval(x);
            // A non-finite objective value would poison the whole
            // least-squares cost (NaN cost rejects every step); drop the
            // soft residual and let the constraints drive the solve.
            if value.is_finite() {
                let r = objective_weight * value;
                cost += r * r;
                gradient_entries(
                    objective,
                    &structure.objective_vars,
                    x,
                    objective_weight,
                    grad,
                    entries,
                );
                ws.pattern.accumulate_row(row, entries, jtj, scratch);
                for &(i, g) in entries.iter() {
                    jtr[i] += g * r;
                }
            }
        }
    }
    (cost, violation)
}

/// Residual-only twin of [`accumulate_rows`]: cost and worst violation of
/// the rows in `range`, no Jacobian work.
fn residual_rows(
    problem: &Problem,
    ws: &LmWorkspace,
    objective_weight: f64,
    range: std::ops::Range<usize>,
    x: &[f64],
) -> (f64, f64) {
    let num_eq = problem.equalities.len();
    let num_ineq = problem.inequalities.len();
    let mut cost = 0.0;
    let mut violation = 0.0f64;
    for row in range {
        if row < num_eq {
            let r = problem.equalities[row].eval(x);
            cost += r * r;
            violation = violation.max(r.abs());
        } else if row < num_eq + num_ineq {
            let value = problem.inequalities[row - num_eq].eval(x);
            if value < 0.0 {
                cost += value * value;
                violation = violation.max(-value);
            }
        } else {
            debug_assert!(ws.objective_row);
            let value = problem.objective.as_ref().expect("objective row").eval(x);
            if value.is_finite() {
                let r = objective_weight * value;
                cost += r * r;
            }
        }
    }
    (cost, violation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QuadraticForm;

    #[test]
    fn solves_bilinear_systems_quickly() {
        // x·y = 6, x − y = 1, x ≥ 0 → (3, 2).
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -6.0,
            linear: Vec::new(),
            quadratic: vec![(0, 1, 1.0)],
        });
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0), (1, -1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(0));
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 3.0).abs() < 1e-4);
        assert!((outcome.assignment[1] - 2.0).abs() < 1e-4);
        assert!(outcome.iterations < 100);
        // The solver reports the sparse shapes it worked with.
        assert_eq!(outcome.stats.nnz_jacobian, 5);
        assert!(outcome.stats.nnz_factor >= 2);
        assert!(outcome.stats.factorizations > 0);
        assert!(outcome.stats.factor_seconds >= 0.0);
        assert!(outcome.stats.restarts >= 1);
    }

    #[test]
    fn solves_sum_of_squares_style_systems_on_the_boundary() {
        // t = l², with t forced to 0: boundary solution l = 0, plus an
        // unrelated equality u = 5.
        let mut problem = Problem::new(3);
        problem.equalities.push(QuadraticForm {
            constant: 0.0,
            linear: vec![(0, 1.0)],
            quadratic: vec![(1, 1, -1.0)],
        });
        problem.equalities.push(QuadraticForm {
            constant: 0.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.equalities.push(QuadraticForm {
            constant: -5.0,
            linear: vec![(2, 1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(1));
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!(outcome.assignment[0].abs() < 1e-5);
        assert!((outcome.assignment[2] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn respects_variable_bounds() {
        // x² = 4 with x ≥ 0 must pick the positive root.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -4.0,
            linear: Vec::new(),
            quadratic: vec![(0, 0, 1.0)],
        });
        problem.set_bound(0, 0.0, 100.0);
        let outcome = LmSolver::default().solve(&problem, Some(&[-3.0]));
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn reports_infeasibility() {
        // x = 0 and x = 1.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm::variable(0));
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Infeasible);
        // The residual of x = 0 ∧ x = 1 cannot drop below 1/2.
        assert!(outcome.stats.final_residual > 0.4);
    }

    #[test]
    fn zero_restarts_are_clamped_to_one_instead_of_panicking() {
        // restarts == 0 used to leave `pick_best` with no outcomes, hitting
        // the `expect("at least one restart runs")`.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -2.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let solver = LmSolver::new(LmOptions {
            restarts: 0,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 2.0).abs() < 1e-6);
        assert_eq!(outcome.stats.restarts, 1);
    }

    #[test]
    fn nan_objective_does_not_poison_best_candidate_selection() {
        // An objective that evaluates to NaN everywhere must not block the
        // violation-driven candidate updates: the solver should still find
        // the feasible point of the constraints.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -3.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.objective = Some(QuadraticForm {
            constant: f64::NAN,
            linear: Vec::new(),
            quadratic: Vec::new(),
        });
        let solver = LmSolver::new(LmOptions {
            objective_weight: 0.05,
            restarts: 2,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, Some(&[0.0]));
        assert!(outcome.assignment[0].is_finite());
        assert!(
            (outcome.assignment[0] - 3.0).abs() < 1e-4,
            "assignment {} violation {}",
            outcome.assignment[0],
            outcome.violation
        );
    }

    #[test]
    fn soft_objective_prefers_smaller_values_among_feasible_points() {
        // x ≥ 3 (no equalities), minimize x via the soft objective.
        let mut problem = Problem::new(1);
        problem.inequalities.push(QuadraticForm {
            constant: -3.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.objective = Some(QuadraticForm::variable(0));
        let solver = LmSolver::new(LmOptions {
            objective_weight: 0.05,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, Some(&[50.0]));
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!(outcome.assignment[0] < 10.0);
    }

    #[test]
    fn stalled_restarts_bail_out_with_their_best_point() {
        // x² + 1 = 0 is infeasible: from a far warm start the residual
        // (x²+1)² keeps shrinking by ever-smaller amounts as x → 0, so
        // every step is accepted and the pre-stall solver burned the whole
        // iteration budget. Stall detection must cut the run short while
        // still returning the best (violation ≈ 1) point.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: 1.0,
            linear: Vec::new(),
            quadratic: vec![(0, 0, 1.0)],
        });
        let solver = LmSolver::new(LmOptions {
            max_iterations: 10_000,
            restarts: 1,
            stall_iterations: 10,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, Some(&[5.0]));
        assert_eq!(outcome.status, SolveStatus::Infeasible);
        assert!(
            outcome.stats.iterations < 500,
            "stall detection did not bail: {} iterations",
            outcome.stats.iterations
        );
        assert!(
            (outcome.violation - 1.0).abs() < 0.05,
            "best-so-far point was not kept: violation {}",
            outcome.violation
        );
    }

    #[test]
    fn the_wall_clock_deadline_stops_the_solve() {
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -2.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let solver = LmSolver::new(LmOptions {
            restarts: 1,
            max_seconds: 1e-9,
            ..LmOptions::default()
        });
        // The deadline fires before the first iteration; the warm start is
        // returned untouched as the best-so-far point.
        let outcome = solver.solve(&problem, Some(&[0.5]));
        assert_eq!(outcome.stats.iterations, 0);
        assert!((outcome.assignment[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_normal_step_matches_the_dense_oracle() {
        // One LM normal-equations solve, sparse vs dense, on a seeded
        // random quadratic system: (JᵀJ + λ(1 + diag(JᵀJ))) s = Jᵀr must
        // agree with the dense computation built from the same rows.
        use polyinv_arith::{Matrix, Vector};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 6 + (seed as usize % 5);
            let m = n + 3;
            let mut problem = Problem::new(n);
            for _ in 0..m {
                let a = rng.random_range(0..n as u64) as usize;
                let b = rng.random_range(0..n as u64) as usize;
                let (lo, hi) = (a.min(b), a.max(b));
                problem.equalities.push(QuadraticForm {
                    constant: rng.random_range(-1.0..1.0),
                    linear: vec![(a, rng.random_range(-2.0..2.0))],
                    quadratic: vec![(lo, hi, rng.random_range(-2.0..2.0))],
                });
            }
            let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
            let lambda = 1e-3;

            // Sparse path.
            let ws = LmWorkspace::build(&problem, 0.0);
            let mut eval = Evaluator::new(&problem, &ws, 0.0, 1);
            let _ = eval.residuals_and_normal(&x);
            let mut numeric = ws.symbolic.numeric();
            let diag = ws.pattern.diag_positions();
            let diag_add: Vec<f64> = (0..n)
                .map(|i| lambda * (1.0 + eval.jtj_values[diag[i]]))
                .collect();
            assert!(ws
                .symbolic
                .factor(&eval.jtj_values, &diag_add, &mut numeric));
            let mut sparse_step = eval.jtr.clone();
            ws.symbolic.solve(&mut numeric, &mut sparse_step);

            // Dense oracle built from the same residual rows.
            let mut jacobian = Matrix::zeros(m, n);
            let mut residuals = vec![0.0; m];
            let mut grad = vec![0.0; n];
            for (row, eq) in problem.equalities.iter().enumerate() {
                residuals[row] = eq.eval(&x);
                grad.fill(0.0);
                eq.add_gradient(&x, &mut grad, 1.0);
                for (col, &g) in grad.iter().enumerate() {
                    jacobian.set(row, col, g);
                }
            }
            let jt = jacobian.transpose();
            let mut jtj = &jt * &jacobian;
            for i in 0..n {
                let d = jtj.get(i, i);
                jtj.add_to(i, i, lambda * (1.0 + d));
            }
            let jtr = jt.mul_vec(&Vector::from_slice(&residuals));
            let dense_step = jtj.solve(&jtr).expect("damped system is PD");
            for i in 0..n {
                assert!(
                    (sparse_step[i] - dense_step[i]).abs() < 1e-7 * (1.0 + dense_step[i].abs()),
                    "seed {seed}: step mismatch at {i}: {} vs {}",
                    sparse_step[i],
                    dense_step[i]
                );
            }
        }
    }

    /// Builds a sparse random system large enough to cross the chunked
    /// evaluation threshold (`rows ≥ 2048`).
    fn big_random_problem(rows: usize, n: usize, seed: u64) -> Problem {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut problem = Problem::new(n);
        for _ in 0..rows {
            let a = rng.random_range(0..n as u64) as usize;
            let b = rng.random_range(0..n as u64) as usize;
            let (lo, hi) = (a.min(b), a.max(b));
            problem.equalities.push(QuadraticForm {
                constant: rng.random_range(-0.5..0.5),
                linear: vec![(a, rng.random_range(-2.0..2.0))],
                quadratic: vec![(lo, hi, rng.random_range(-2.0..2.0))],
            });
        }
        problem
    }

    #[test]
    fn chunked_solves_are_byte_identical_across_eval_thread_counts() {
        let problem = big_random_problem(2100, 40, 7);
        let solve = |eval_threads: usize| {
            let solver = LmSolver::new(LmOptions {
                max_iterations: 6,
                restarts: 1,
                parallel_restarts: false,
                eval_threads,
                ..LmOptions::default()
            });
            solver.solve(&problem, None)
        };
        let serial = solve(1);
        for threads in [4, 8] {
            let parallel = solve(threads);
            assert_eq!(serial.status, parallel.status);
            assert_eq!(
                serial
                    .assignment
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                parallel
                    .assignment
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "eval_threads={threads} diverged from the serial chunked pass"
            );
            assert_eq!(serial.stats.iterations, parallel.stats.iterations);
            assert_eq!(serial.stats.factorizations, parallel.stats.factorizations);
            assert_eq!(
                serial.stats.final_residual.to_bits(),
                parallel.stats.final_residual.to_bits()
            );
        }
        assert_eq!(serial.stats.threads, 1);
    }

    /// Below the threshold the evaluator must keep the original fully-serial
    /// accumulation — byte-for-byte — so that every existing golden stays
    /// valid. The chunked path groups partial sums differently and would
    /// drift in the last bits.
    #[test]
    fn small_systems_keep_the_legacy_serial_accumulation() {
        let problem = big_random_problem(64, 12, 11);
        let ws = LmWorkspace::build(&problem, 0.0);
        let mut eval = Evaluator::new(&problem, &ws, 0.0, 8);
        assert!(eval.chunk_ranges.is_empty(), "64 rows must stay serial");
        let x: Vec<f64> = (0..12).map(|i| 0.1 * i as f64 - 0.5).collect();
        let (cost, violation) = eval.residuals_and_normal(&x);
        let (cost2, violation2) = eval.residuals_only(&x);
        assert_eq!(cost.to_bits(), cost2.to_bits());
        assert_eq!(violation.to_bits(), violation2.to_bits());
    }
}
