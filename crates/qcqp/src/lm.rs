//! A projected Levenberg–Marquardt solver for quadratic constraint systems.
//!
//! The quadratic systems produced by the paper's Cholesky encoding have a
//! convenient shape: all hard constraints are quadratic *equalities*, and the
//! only inequalities are simple lower bounds on individual variables
//! (diagonal Cholesky entries and positivity witnesses). Finding a feasible
//! point is therefore a nonlinear least-squares problem
//! `min ‖r(x)‖²` (with `r` the vector of equality residuals and inequality
//! hinges) over a box — exactly the setting in which Levenberg–Marquardt
//! with projection onto the box excels. Compared to the first-order
//! augmented-Lagrangian solver it converges orders of magnitude faster on
//! the small and medium systems of the benchmark suite, at the cost of a
//! dense `JᵀJ` factorization per iteration.

use polyinv_arith::{Matrix, Vector};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::penalty::{SolveOutcome, SolveStatus};
use crate::problem::Problem;

/// Configuration of the Levenberg–Marquardt solver.
#[derive(Debug, Clone)]
pub struct LmOptions {
    /// Maximum number of LM iterations per restart.
    pub max_iterations: usize,
    /// Feasibility tolerance declaring success (maximum constraint
    /// violation).
    pub tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Factor by which λ grows after a rejected step.
    pub lambda_up: f64,
    /// Factor by which λ shrinks after an accepted step.
    pub lambda_down: f64,
    /// Number of random restarts.
    pub restarts: usize,
    /// Random seed.
    pub seed: u64,
    /// Scale of the random initialization.
    pub init_scale: f64,
    /// Weight given to the objective (if any) relative to the constraint
    /// residuals; the objective is treated as a soft residual
    /// `objective_weight · objective(x)` so that among near-feasible points
    /// lower objectives are preferred.
    pub objective_weight: f64,
    /// Whether the restarts may fan out over worker threads. Callers that
    /// already run *inside* a parallel region (the certificate checker's
    /// per-pair fan-out, strong synthesis' per-attempt fan-out) set this to
    /// `false` to avoid oversubscribing the CPU with nested waves.
    pub parallel_restarts: bool,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iterations: 250,
            tolerance: 1e-7,
            initial_lambda: 1e-3,
            lambda_up: 7.0,
            lambda_down: 0.35,
            restarts: 3,
            seed: 0x1a2b3c,
            init_scale: 0.3,
            objective_weight: 0.0,
            parallel_restarts: true,
        }
    }
}

/// The projected Levenberg–Marquardt solver.
#[derive(Debug, Clone, Default)]
pub struct LmSolver {
    options: LmOptions,
}

impl LmSolver {
    /// Creates a solver with the given options.
    pub fn new(options: LmOptions) -> Self {
        LmSolver { options }
    }

    /// Solves the problem, optionally starting from a warm-start point.
    ///
    /// The multi-start restarts are independent (restart `k` seeds its own
    /// generator with `seed + k`) and run **in parallel** on worker threads;
    /// the selection among their outcomes is deterministic — the
    /// lowest-index feasible restart wins, otherwise the restart with the
    /// smallest violation — so the result is identical to the sequential
    /// first-feasible-wins policy.
    ///
    /// PSD blocks are handled by projection after every accepted step (they
    /// are absent from Cholesky-encoded systems, which are the intended
    /// input).
    pub fn solve(&self, problem: &Problem, warm_start: Option<&[f64]>) -> SolveOutcome {
        let restarts = self.options.restarts.max(1);
        let outcomes = if self.options.parallel_restarts {
            crate::par::parallel_indexed_until(
                restarts,
                |restart| self.run_restart(problem, warm_start, restart),
                |outcome| outcome.status == SolveStatus::Feasible,
            )
        } else {
            // Sequential with the classic first-feasible early exit; used
            // when the caller already parallelizes one level up.
            let mut outcomes = Vec::with_capacity(restarts);
            for restart in 0..restarts {
                let outcome = self.run_restart(problem, warm_start, restart);
                let feasible = outcome.status == SolveStatus::Feasible;
                outcomes.push(outcome);
                if feasible {
                    break;
                }
            }
            outcomes
        };
        Self::pick_best(outcomes)
    }

    /// Runs one independent restart: restart 0 consumes the warm start, all
    /// others draw a fresh random initialization from their own generator.
    fn run_restart(
        &self,
        problem: &Problem,
        warm_start: Option<&[f64]>,
        restart: usize,
    ) -> SolveOutcome {
        let mut rng = StdRng::seed_from_u64(self.options.seed.wrapping_add(restart as u64));
        let mut x: Vec<f64> = match (restart, warm_start) {
            (0, Some(start)) if start.len() == problem.num_vars => start.to_vec(),
            _ => (0..problem.num_vars)
                .map(|_| rng.random_range(-self.options.init_scale..self.options.init_scale))
                .collect(),
        };
        problem.clamp(&mut x);
        self.solve_from(problem, &mut x)
    }

    /// Deterministic selection: the first feasible outcome in restart order,
    /// otherwise the first outcome attaining the minimum violation. A
    /// non-finite violation (NaN from an overflowing residual) compares as
    /// worst, so it can never displace a finite candidate.
    fn pick_best(outcomes: Vec<SolveOutcome>) -> SolveOutcome {
        let finite_or_inf = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
        let mut best: Option<SolveOutcome> = None;
        for outcome in outcomes {
            let better = match &best {
                None => true,
                Some(current) => {
                    (outcome.status == SolveStatus::Feasible
                        && current.status != SolveStatus::Feasible)
                        || (outcome.status == current.status
                            && finite_or_inf(outcome.violation) < finite_or_inf(current.violation))
                }
            };
            if better {
                best = Some(outcome);
            }
            if best
                .as_ref()
                .is_some_and(|o| o.status == SolveStatus::Feasible)
            {
                break;
            }
        }
        // `solve` clamps `restarts` to at least one, so `outcomes` is never
        // empty here.
        best.expect("at least one restart runs")
    }

    fn solve_from(&self, problem: &Problem, x: &mut Vec<f64>) -> SolveOutcome {
        let opts = &self.options;
        let n = problem.num_vars;
        let mut lambda = opts.initial_lambda;
        let mut iterations = 0usize;

        let objective_at = |point: &[f64]| {
            problem
                .objective
                .as_ref()
                .map(|o| o.eval(point))
                .unwrap_or(0.0)
        };
        let minimizing = problem.objective.is_some() && opts.objective_weight > 0.0;
        // A NaN objective or violation (e.g. an objective evaluating to NaN
        // at the start point) must not poison best-candidate selection:
        // every `<` comparison against NaN is false, which would freeze
        // `best_x` at the initial point forever. Treat non-finite as +inf.
        let finite_or_inf = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
        let mut best_x = x.clone();
        let mut best_violation = finite_or_inf(problem.max_violation(x));
        let mut best_objective = finite_or_inf(objective_at(x));

        for _ in 0..opts.max_iterations {
            iterations += 1;
            let (residuals, jacobian_rows) = self.residuals_and_rows(problem, x);
            let cost: f64 = residuals.iter().map(|r| r * r).sum();
            if !minimizing && problem.max_violation(x) <= opts.tolerance {
                best_x = x.clone();
                best_violation = problem.max_violation(x);
                break;
            }
            let m = residuals.len();
            if m == 0 {
                break;
            }
            // Dense Jacobian.
            let mut jacobian = Matrix::zeros(m, n);
            for (row, entries) in jacobian_rows.iter().enumerate() {
                for &(col, value) in entries {
                    jacobian.add_to(row, col, value);
                }
            }
            let jt = jacobian.transpose();
            let mut jtj = &jt * &jacobian;
            let r_vec = Vector::from_slice(&residuals);
            let jtr = jt.mul_vec(&r_vec);

            // Try steps with increasing damping until one reduces the cost.
            let mut accepted = false;
            for _ in 0..8 {
                let mut damped = jtj.clone();
                for i in 0..n {
                    damped.add_to(i, i, lambda * (1.0 + jtj.get(i, i)));
                }
                let Some(step) = damped.solve(&jtr) else {
                    lambda *= opts.lambda_up;
                    continue;
                };
                let mut candidate = x.clone();
                for i in 0..n {
                    candidate[i] -= step[i];
                }
                problem.clamp(&mut candidate);
                for block in &problem.psd {
                    block.project(&mut candidate);
                }
                let (candidate_residuals, _) = self.residuals_and_rows(problem, &candidate);
                let candidate_cost: f64 = candidate_residuals.iter().map(|r| r * r).sum();
                // Skip non-finite candidate costs outright: accepting a
                // NaN/inf point would derail every later comparison.
                if candidate_cost.is_finite() && candidate_cost < cost {
                    *x = candidate;
                    lambda = (lambda * opts.lambda_down).max(1e-12);
                    accepted = true;
                    break;
                }
                lambda *= opts.lambda_up;
            }
            let violation = finite_or_inf(problem.max_violation(x));
            let objective = finite_or_inf(objective_at(x));
            let better = if violation <= opts.tolerance && best_violation <= opts.tolerance {
                objective < best_objective
            } else {
                violation < best_violation
            };
            if better {
                best_violation = violation;
                best_objective = objective;
                best_x = x.clone();
            }
            if !accepted {
                break;
            }
            // Avoid needless work once jtj gets reused.
            jtj.symmetrize();
        }

        let violation = best_violation;
        let objective = problem
            .objective
            .as_ref()
            .map(|o| o.eval(&best_x))
            .unwrap_or(0.0);
        SolveOutcome {
            assignment: best_x,
            violation,
            objective,
            status: if violation <= opts.tolerance {
                SolveStatus::Feasible
            } else {
                SolveStatus::Infeasible
            },
            iterations,
        }
    }

    /// Evaluates the residual vector and the sparse Jacobian rows at `x`.
    ///
    /// Residuals: every equality value; `max(0, −value)` for every
    /// inequality (with the corresponding active-set Jacobian row); the
    /// weighted objective if configured.
    #[allow(clippy::type_complexity)]
    fn residuals_and_rows(
        &self,
        problem: &Problem,
        x: &[f64],
    ) -> (Vec<f64>, Vec<Vec<(usize, f64)>>) {
        let mut residuals =
            Vec::with_capacity(problem.equalities.len() + problem.inequalities.len());
        let mut rows = Vec::with_capacity(residuals.capacity());
        let mut gradient_buffer = vec![0.0; problem.num_vars];
        let sparse_gradient = |form: &crate::problem::QuadraticForm,
                               x: &[f64],
                               buffer: &mut Vec<f64>|
         -> Vec<(usize, f64)> {
            for value in buffer.iter_mut() {
                *value = 0.0;
            }
            form.add_gradient(x, buffer, 1.0);
            buffer
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v != 0.0)
                .map(|(i, &v)| (i, v))
                .collect()
        };
        for eq in &problem.equalities {
            residuals.push(eq.eval(x));
            rows.push(sparse_gradient(eq, x, &mut gradient_buffer));
        }
        for ineq in &problem.inequalities {
            let value = ineq.eval(x);
            if value < 0.0 {
                residuals.push(-value);
                let row = sparse_gradient(ineq, x, &mut gradient_buffer)
                    .into_iter()
                    .map(|(i, v)| (i, -v))
                    .collect();
                rows.push(row);
            } else {
                residuals.push(0.0);
                rows.push(Vec::new());
            }
        }
        if let (Some(objective), true) = (&problem.objective, self.options.objective_weight > 0.0) {
            let value = objective.eval(x);
            // A non-finite objective value would poison the whole
            // least-squares cost (NaN cost rejects every step); drop the
            // soft residual and let the constraints drive the solve.
            if value.is_finite() {
                residuals.push(self.options.objective_weight * value);
                let row = sparse_gradient(objective, x, &mut gradient_buffer)
                    .into_iter()
                    .map(|(i, v)| (i, self.options.objective_weight * v))
                    .collect();
                rows.push(row);
            }
        }
        (residuals, rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QuadraticForm;

    #[test]
    fn solves_bilinear_systems_quickly() {
        // x·y = 6, x − y = 1, x ≥ 0 → (3, 2).
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -6.0,
            linear: Vec::new(),
            quadratic: vec![(0, 1, 1.0)],
        });
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0), (1, -1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(0));
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 3.0).abs() < 1e-4);
        assert!((outcome.assignment[1] - 2.0).abs() < 1e-4);
        assert!(outcome.iterations < 100);
    }

    #[test]
    fn solves_sum_of_squares_style_systems_on_the_boundary() {
        // t = l², with t forced to 0: boundary solution l = 0, plus an
        // unrelated equality u = 5.
        let mut problem = Problem::new(3);
        problem.equalities.push(QuadraticForm {
            constant: 0.0,
            linear: vec![(0, 1.0)],
            quadratic: vec![(1, 1, -1.0)],
        });
        problem.equalities.push(QuadraticForm {
            constant: 0.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.equalities.push(QuadraticForm {
            constant: -5.0,
            linear: vec![(2, 1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(1));
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!(outcome.assignment[0].abs() < 1e-5);
        assert!((outcome.assignment[2] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn respects_variable_bounds() {
        // x² = 4 with x ≥ 0 must pick the positive root.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -4.0,
            linear: Vec::new(),
            quadratic: vec![(0, 0, 1.0)],
        });
        problem.set_bound(0, 0.0, 100.0);
        let outcome = LmSolver::default().solve(&problem, Some(&[-3.0]));
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn reports_infeasibility() {
        // x = 0 and x = 1.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm::variable(0));
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Infeasible);
    }

    #[test]
    fn zero_restarts_are_clamped_to_one_instead_of_panicking() {
        // restarts == 0 used to leave `pick_best` with no outcomes, hitting
        // the `expect("at least one restart runs")`.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -2.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let solver = LmSolver::new(LmOptions {
            restarts: 0,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn nan_objective_does_not_poison_best_candidate_selection() {
        // An objective that evaluates to NaN everywhere must not block the
        // violation-driven candidate updates: the solver should still find
        // the feasible point of the constraints.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -3.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.objective = Some(QuadraticForm {
            constant: f64::NAN,
            linear: Vec::new(),
            quadratic: Vec::new(),
        });
        let solver = LmSolver::new(LmOptions {
            objective_weight: 0.05,
            restarts: 2,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, Some(&[0.0]));
        assert!(outcome.assignment[0].is_finite());
        assert!(
            (outcome.assignment[0] - 3.0).abs() < 1e-4,
            "assignment {} violation {}",
            outcome.assignment[0],
            outcome.violation
        );
    }

    #[test]
    fn soft_objective_prefers_smaller_values_among_feasible_points() {
        // x ≥ 3 (no equalities), minimize x via the soft objective.
        let mut problem = Problem::new(1);
        problem.inequalities.push(QuadraticForm {
            constant: -3.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.objective = Some(QuadraticForm::variable(0));
        let solver = LmSolver::new(LmOptions {
            objective_weight: 0.05,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, Some(&[50.0]));
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!(outcome.assignment[0] < 10.0);
    }
}
