//! A projected Levenberg–Marquardt solver for quadratic constraint systems.
//!
//! The quadratic systems produced by the paper's Cholesky encoding have a
//! convenient shape: all hard constraints are quadratic *equalities*, and the
//! only inequalities are simple lower bounds on individual variables
//! (diagonal Cholesky entries and positivity witnesses). Finding a feasible
//! point is therefore a nonlinear least-squares problem
//! `min ‖r(x)‖²` (with `r` the vector of equality residuals and inequality
//! hinges) over a box — exactly the setting in which Levenberg–Marquardt
//! with projection onto the box excels.
//!
//! The systems are also >99% sparse (each residual touches a handful of the
//! thousands of unknowns), so the whole inner loop runs on the sparse
//! substrate of `polyinv-arith`: the normal matrix `JᵀJ` is accumulated
//! directly from sparse Jacobian rows into a fixed [`JtjPattern`] (no dense
//! `m×n` Jacobian, no dense transpose, no dense product is ever formed), and
//! the damped system is solved by a sparse LDLᵀ whose fill-reducing ordering
//! and symbolic analysis are computed **once per problem** and shared by all
//! restarts — only the numeric factorization runs per iteration. Solver
//! memory is `O(nnz)` instead of the former `O(m·n)`.

use std::time::Instant;

use polyinv_arith::sparse::{JtjPattern, JtjScratch, SymbolicLdl};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::penalty::{SolveOutcome, SolveStatus};
use crate::problem::{Problem, QuadraticForm};
use crate::stats::SolverStats;

/// Configuration of the Levenberg–Marquardt solver.
#[derive(Debug, Clone)]
pub struct LmOptions {
    /// Maximum number of LM iterations per restart.
    pub max_iterations: usize,
    /// Feasibility tolerance declaring success (maximum constraint
    /// violation).
    pub tolerance: f64,
    /// Initial damping factor λ.
    pub initial_lambda: f64,
    /// Factor by which λ grows after a rejected step.
    pub lambda_up: f64,
    /// Factor by which λ shrinks after an accepted step.
    pub lambda_down: f64,
    /// Number of random restarts.
    pub restarts: usize,
    /// Random seed.
    pub seed: u64,
    /// Scale of the random initialization.
    pub init_scale: f64,
    /// Weight given to the objective (if any) relative to the constraint
    /// residuals; the objective is treated as a soft residual
    /// `objective_weight · objective(x)` so that among near-feasible points
    /// lower objectives are preferred.
    pub objective_weight: f64,
    /// Whether the restarts may fan out over worker threads. Callers that
    /// already run *inside* a parallel region (the certificate checker's
    /// per-pair fan-out, strong synthesis' per-attempt fan-out) set this to
    /// `false` to avoid oversubscribing the CPU with nested waves.
    pub parallel_restarts: bool,
    /// Number of consecutive iterations without a meaningful improvement of
    /// the best violation (relative decrease below 0.1%) after which a
    /// restart bails out with its best-so-far point. `0` disables stall
    /// detection.
    pub stall_iterations: usize,
    /// Wall-clock budget in seconds for the whole solve, shared across all
    /// restarts; any restart past the deadline stops at the next iteration
    /// boundary and returns its best-so-far point. `0` disables the
    /// deadline.
    pub max_seconds: f64,
}

impl Default for LmOptions {
    fn default() -> Self {
        LmOptions {
            max_iterations: 250,
            tolerance: 1e-7,
            initial_lambda: 1e-3,
            lambda_up: 7.0,
            lambda_down: 0.35,
            restarts: 3,
            seed: 0x1a2b3c,
            init_scale: 0.3,
            objective_weight: 0.0,
            parallel_restarts: true,
            stall_iterations: 40,
            max_seconds: 0.0,
        }
    }
}

/// Relative violation decrease below which an iteration counts as stalled:
/// the kind of 1e-6-per-iteration trickle that burned minutes on a single
/// ϒ rung without ever reaching feasibility.
const STALL_RELATIVE_IMPROVEMENT: f64 = 1e-3;

/// The per-problem sparse workspace: the symbolic side of the solve,
/// computed once per [`LmSolver::solve`] call and shared (immutably) by
/// every restart. The Jacobian's sparsity pattern is fixed by the
/// [`Problem`], so the `JᵀJ` pattern, the fill-reducing ordering and the
/// symbolic factorization never change — only values do.
#[derive(Debug)]
struct LmWorkspace {
    /// The problem's sparsity metadata, fetched once per solve.
    structure: std::sync::Arc<crate::problem::ProblemStructure>,
    /// Symbolic `JᵀJ`: pattern plus per-row scatter positions.
    pattern: JtjPattern,
    /// Symbolic LDLᵀ of the (damped) normal matrix.
    symbolic: SymbolicLdl,
    /// Whether the objective contributes a soft residual row.
    objective_row: bool,
}

impl LmWorkspace {
    fn build(problem: &Problem, objective_weight: f64) -> Self {
        let structure = problem.structure();
        let objective_row = problem.objective.is_some() && objective_weight > 0.0;
        let mut rows: Vec<Vec<usize>> =
            Vec::with_capacity(structure.equality_vars.len() + structure.inequality_vars.len() + 1);
        rows.extend(structure.equality_vars.iter().cloned());
        rows.extend(structure.inequality_vars.iter().cloned());
        if objective_row {
            rows.push(structure.objective_vars.clone());
        }
        let pattern = JtjPattern::new(problem.num_vars, rows);
        let (row_ptr, col_idx) = pattern.pattern();
        let symbolic = SymbolicLdl::analyze(problem.num_vars, row_ptr, col_idx);
        LmWorkspace {
            structure,
            pattern,
            symbolic,
            objective_row,
        }
    }

    /// The sparsity statistics of this workspace.
    fn stats_skeleton(&self) -> SolverStats {
        SolverStats {
            nnz_jacobian: self.pattern.jacobian_nnz(),
            nnz_jtj: self.pattern.nnz(),
            nnz_factor: self.symbolic.nnz_factor(),
            ..SolverStats::default()
        }
    }
}

/// The projected Levenberg–Marquardt solver.
#[derive(Debug, Clone, Default)]
pub struct LmSolver {
    options: LmOptions,
}

impl LmSolver {
    /// Creates a solver with the given options.
    pub fn new(options: LmOptions) -> Self {
        LmSolver { options }
    }

    /// Solves the problem, optionally starting from a warm-start point.
    ///
    /// The multi-start restarts are independent (restart `k` seeds its own
    /// generator with `seed + k`) and run **in parallel** on worker threads;
    /// the selection among their outcomes is deterministic — the
    /// lowest-index feasible restart wins, otherwise the restart with the
    /// smallest violation — so the result is identical to the sequential
    /// first-feasible-wins policy. The sparse workspace (pattern, ordering,
    /// symbolic factorization) is computed once here and shared by all
    /// restarts.
    ///
    /// PSD blocks are handled by projection after every accepted step (they
    /// are absent from Cholesky-encoded systems, which are the intended
    /// input).
    pub fn solve(&self, problem: &Problem, warm_start: Option<&[f64]>) -> SolveOutcome {
        let workspace = LmWorkspace::build(problem, self.options.objective_weight);
        let restarts = self.options.restarts.max(1);
        // The wall-clock budget covers the whole solve: every restart —
        // parallel or sequential — checks its deadline against this one
        // start instant, so serial fallback cannot multiply the budget by
        // the restart count.
        let started = Instant::now();
        let outcomes = if self.options.parallel_restarts {
            crate::par::parallel_indexed_until(
                restarts,
                |restart| self.run_restart(problem, &workspace, warm_start, restart, started),
                |outcome| outcome.status == SolveStatus::Feasible,
            )
        } else {
            // Sequential with the classic first-feasible early exit; used
            // when the caller already parallelizes one level up.
            let mut outcomes = Vec::with_capacity(restarts);
            for restart in 0..restarts {
                let outcome = self.run_restart(problem, &workspace, warm_start, restart, started);
                let feasible = outcome.status == SolveStatus::Feasible;
                outcomes.push(outcome);
                if feasible {
                    break;
                }
            }
            outcomes
        };
        // Aggregate the work done across restarts onto the winning outcome.
        let mut stats = workspace.stats_skeleton();
        for outcome in &outcomes {
            stats.absorb_restart(&outcome.stats);
        }
        let mut best = Self::pick_best(outcomes);
        stats.final_residual = best.stats.final_residual;
        best.stats = stats;
        best
    }

    /// Runs one independent restart: restart 0 consumes the warm start, all
    /// others draw a fresh random initialization from their own generator.
    fn run_restart(
        &self,
        problem: &Problem,
        workspace: &LmWorkspace,
        warm_start: Option<&[f64]>,
        restart: usize,
        started: Instant,
    ) -> SolveOutcome {
        let mut rng = StdRng::seed_from_u64(self.options.seed.wrapping_add(restart as u64));
        let mut x: Vec<f64> = match (restart, warm_start) {
            (0, Some(start)) if start.len() == problem.num_vars => start.to_vec(),
            _ => (0..problem.num_vars)
                .map(|_| rng.random_range(-self.options.init_scale..self.options.init_scale))
                .collect(),
        };
        problem.clamp(&mut x);
        self.solve_from(problem, workspace, &mut x, started)
    }

    /// Deterministic selection: the first feasible outcome in restart order,
    /// otherwise the first outcome attaining the minimum violation. A
    /// non-finite violation (NaN from an overflowing residual) compares as
    /// worst, so it can never displace a finite candidate.
    fn pick_best(outcomes: Vec<SolveOutcome>) -> SolveOutcome {
        let finite_or_inf = |v: f64| if v.is_finite() { v } else { f64::INFINITY };
        let mut best: Option<SolveOutcome> = None;
        for outcome in outcomes {
            let better = match &best {
                None => true,
                Some(current) => {
                    (outcome.status == SolveStatus::Feasible
                        && current.status != SolveStatus::Feasible)
                        || (outcome.status == current.status
                            && finite_or_inf(outcome.violation) < finite_or_inf(current.violation))
                }
            };
            if better {
                best = Some(outcome);
            }
            if best
                .as_ref()
                .is_some_and(|o| o.status == SolveStatus::Feasible)
            {
                break;
            }
        }
        // `solve` clamps `restarts` to at least one, so `outcomes` is never
        // empty here.
        best.expect("at least one restart runs")
    }

    fn solve_from(
        &self,
        problem: &Problem,
        ws: &LmWorkspace,
        x: &mut Vec<f64>,
        started: Instant,
    ) -> SolveOutcome {
        let opts = &self.options;
        let n = problem.num_vars;
        let mut lambda = opts.initial_lambda;
        let mut stats = SolverStats {
            restarts: 1,
            ..SolverStats::default()
        };

        let objective_at = |point: &[f64]| {
            problem
                .objective
                .as_ref()
                .map(|o| o.eval(point))
                .unwrap_or(0.0)
        };
        let minimizing = problem.objective.is_some() && opts.objective_weight > 0.0;
        // A NaN objective or violation (e.g. an objective evaluating to NaN
        // at the start point) must not poison best-candidate selection:
        // every `<` comparison against NaN is false, which would freeze
        // `best_x` at the initial point forever. Treat non-finite as +inf.
        let finite_or_inf = |v: f64| if v.is_finite() { v } else { f64::INFINITY };

        // Per-restart numeric buffers; the symbolic side lives in `ws`.
        let mut eval = Evaluator::new(problem, ws, opts.objective_weight);
        let mut numeric = ws.symbolic.numeric();
        let mut step = vec![0.0; n];
        let mut diag_add = vec![0.0; n];
        let mut candidate = vec![0.0; n];

        let mut best_x = x.clone();
        let mut best_violation = {
            let (_, constraint_violation) = eval.residuals_only(x);
            finite_or_inf(full_violation(problem, x, constraint_violation))
        };
        let mut best_objective = finite_or_inf(objective_at(x));

        let mut stalled = 0usize;
        for _ in 0..opts.max_iterations {
            if opts.max_seconds > 0.0 && started.elapsed().as_secs_f64() >= opts.max_seconds {
                break;
            }
            stats.iterations += 1;
            // One pass evaluates the residuals and scatters the sparse
            // Jacobian rows straight into `JᵀJ` and `Jᵀr`.
            let (cost, constraint_violation) = eval.residuals_and_normal(x);
            let mut current_violation = full_violation(problem, x, constraint_violation);
            if !minimizing && current_violation <= opts.tolerance {
                best_x = x.clone();
                best_violation = current_violation;
                break;
            }
            if eval.rows == 0 {
                break;
            }

            // Try steps with increasing damping until one reduces the cost.
            let mut accepted = false;
            for _ in 0..8 {
                let diag = ws.pattern.diag_positions();
                for i in 0..n {
                    diag_add[i] = lambda * (1.0 + eval.jtj_values[diag[i]]);
                }
                stats.factorizations += 1;
                let factor_start = Instant::now();
                let factored = ws
                    .symbolic
                    .factor(&eval.jtj_values, &diag_add, &mut numeric);
                stats.factor_seconds += factor_start.elapsed().as_secs_f64();
                if !factored {
                    lambda *= opts.lambda_up;
                    continue;
                }
                step.copy_from_slice(&eval.jtr);
                let solve_start = Instant::now();
                ws.symbolic.solve(&mut numeric, &mut step);
                stats.solve_seconds += solve_start.elapsed().as_secs_f64();

                candidate.copy_from_slice(x);
                for i in 0..n {
                    candidate[i] -= step[i];
                }
                problem.clamp(&mut candidate);
                for block in &problem.psd {
                    block.project(&mut candidate);
                }
                // Residuals-only evaluation: the Jacobian is not needed to
                // score a candidate, and its constraint violation falls out
                // of the same pass (no separate `max_violation` sweep).
                let (candidate_cost, candidate_constraint_violation) =
                    eval.residuals_only(&candidate);
                // Skip non-finite candidate costs outright: accepting a
                // NaN/inf point would derail every later comparison.
                if candidate_cost.is_finite() && candidate_cost < cost {
                    std::mem::swap(x, &mut candidate);
                    current_violation = full_violation(problem, x, candidate_constraint_violation);
                    lambda = (lambda * opts.lambda_down).max(1e-12);
                    accepted = true;
                    break;
                }
                lambda *= opts.lambda_up;
            }
            let violation = finite_or_inf(current_violation);
            let objective = finite_or_inf(objective_at(x));
            let better = if violation <= opts.tolerance && best_violation <= opts.tolerance {
                objective < best_objective
            } else {
                violation < best_violation
            };
            // Stall detection: an iteration makes progress only when it
            // shaves a meaningful relative slice off the best violation (or,
            // in minimizing mode, improves the objective among feasible
            // points). Accepted steps whose cost decreases while the
            // violation flatlines used to spin for the full iteration
            // budget.
            let progressed = violation < best_violation * (1.0 - STALL_RELATIVE_IMPROVEMENT)
                || (minimizing
                    && violation <= opts.tolerance
                    && best_violation <= opts.tolerance
                    && objective < best_objective);
            if better {
                best_violation = violation;
                best_objective = objective;
                best_x = x.clone();
            }
            if progressed {
                stalled = 0;
            } else {
                stalled += 1;
            }
            if !accepted {
                break;
            }
            if opts.stall_iterations > 0 && stalled >= opts.stall_iterations {
                break;
            }
        }

        stats.final_residual = eval.residuals_only(&best_x).0;
        let violation = best_violation;
        let objective = problem
            .objective
            .as_ref()
            .map(|o| o.eval(&best_x))
            .unwrap_or(0.0);
        SolveOutcome {
            assignment: best_x,
            violation,
            objective,
            status: if violation <= opts.tolerance {
                SolveStatus::Feasible
            } else {
                SolveStatus::Infeasible
            },
            iterations: stats.iterations,
            stats,
        }
    }
}

/// The worst violation over *all* constraint classes, given the worst
/// equality/inequality violation already measured by a residual pass.
/// Matches [`Problem::max_violation`] without re-evaluating every form.
fn full_violation(problem: &Problem, x: &[f64], constraint_violation: f64) -> f64 {
    let mut worst = constraint_violation.max(0.0);
    for (i, &(lo, hi)) in problem.bounds.iter().enumerate() {
        worst = worst.max(lo - x[i]).max(x[i] - hi);
    }
    for block in &problem.psd {
        worst = worst.max((-block.min_eigenvalue(x)).max(0.0));
    }
    worst
}

/// Per-restart residual/Jacobian evaluator: owns the numeric buffers and
/// scatters sparse gradient rows directly into the `JᵀJ` values and `Jᵀr`.
struct Evaluator<'a> {
    problem: &'a Problem,
    ws: &'a LmWorkspace,
    objective_weight: f64,
    /// Number of Jacobian rows (equalities + inequalities + soft objective).
    rows: usize,
    /// Accumulated lower-triangle `JᵀJ` values (layout: `ws.pattern`).
    jtj_values: Vec<f64>,
    /// Accumulated `Jᵀr`.
    jtr: Vec<f64>,
    /// Dense gradient scatter buffer (only touched entries are written and
    /// cleared).
    grad: Vec<f64>,
    /// The current row's sparse gradient entries.
    entries: Vec<(usize, f64)>,
    scratch: JtjScratch,
}

impl<'a> Evaluator<'a> {
    fn new(problem: &'a Problem, ws: &'a LmWorkspace, objective_weight: f64) -> Self {
        let rows =
            problem.equalities.len() + problem.inequalities.len() + usize::from(ws.objective_row);
        Evaluator {
            problem,
            ws,
            objective_weight,
            rows,
            jtj_values: ws.pattern.values_buffer(),
            jtr: vec![0.0; problem.num_vars],
            grad: vec![0.0; problem.num_vars],
            entries: Vec::new(),
            scratch: JtjScratch::default(),
        }
    }

    /// Collects the sparse gradient of `scale · form` at `x` into
    /// `self.entries`, using only the form's touched variables.
    fn gradient_entries(&mut self, form: &QuadraticForm, vars: &[usize], x: &[f64], scale: f64) {
        for &v in vars {
            self.grad[v] = 0.0;
        }
        form.add_gradient(x, &mut self.grad, scale);
        self.entries.clear();
        for &v in vars {
            let g = self.grad[v];
            if g != 0.0 {
                self.entries.push((v, g));
            }
        }
    }

    /// Evaluates the residual vector at `x` while accumulating `JᵀJ` and
    /// `Jᵀr` from the sparse rows. Returns the sum-of-squares cost and the
    /// worst equality/inequality violation (a by-product of the same pass).
    fn residuals_and_normal(&mut self, x: &[f64]) -> (f64, f64) {
        self.jtj_values.fill(0.0);
        self.jtr.fill(0.0);
        let mut cost = 0.0;
        let mut violation = 0.0f64;
        let problem = self.problem;
        let ws = self.ws;
        // The workspace fetched the structure once per solve; re-borrowing
        // through an Arc clone keeps `self` free for the scatter calls.
        let structure = std::sync::Arc::clone(&ws.structure);
        let mut row = 0;
        for (eq, vars) in problem.equalities.iter().zip(&structure.equality_vars) {
            let r = eq.eval(x);
            cost += r * r;
            violation = violation.max(r.abs());
            self.gradient_entries(eq, vars, x, 1.0);
            ws.pattern
                .accumulate_row(row, &self.entries, &mut self.jtj_values, &mut self.scratch);
            for &(i, g) in &self.entries {
                self.jtr[i] += g * r;
            }
            row += 1;
        }
        for (ineq, vars) in problem.inequalities.iter().zip(&structure.inequality_vars) {
            let value = ineq.eval(x);
            if value < 0.0 {
                let r = -value;
                cost += r * r;
                violation = violation.max(r);
                self.gradient_entries(ineq, vars, x, -1.0);
                ws.pattern.accumulate_row(
                    row,
                    &self.entries,
                    &mut self.jtj_values,
                    &mut self.scratch,
                );
                for &(i, g) in &self.entries {
                    self.jtr[i] += g * r;
                }
            }
            row += 1;
        }
        if ws.objective_row {
            let objective = problem.objective.as_ref().expect("objective row");
            let value = objective.eval(x);
            // A non-finite objective value would poison the whole
            // least-squares cost (NaN cost rejects every step); drop the
            // soft residual and let the constraints drive the solve.
            if value.is_finite() {
                let r = self.objective_weight * value;
                cost += r * r;
                let weight = self.objective_weight;
                self.gradient_entries(objective, &structure.objective_vars, x, weight);
                ws.pattern.accumulate_row(
                    row,
                    &self.entries,
                    &mut self.jtj_values,
                    &mut self.scratch,
                );
                for &(i, g) in &self.entries {
                    self.jtr[i] += g * r;
                }
            }
        }
        (cost, violation)
    }

    /// Evaluates only the residuals at `x` (no Jacobian work): the
    /// sum-of-squares cost plus the worst equality/inequality violation.
    /// Used to score step candidates, where the former implementation
    /// computed and discarded full Jacobian rows.
    fn residuals_only(&self, x: &[f64]) -> (f64, f64) {
        let mut cost = 0.0;
        let mut violation = 0.0f64;
        for eq in &self.problem.equalities {
            let r = eq.eval(x);
            cost += r * r;
            violation = violation.max(r.abs());
        }
        for ineq in &self.problem.inequalities {
            let value = ineq.eval(x);
            if value < 0.0 {
                cost += value * value;
                violation = violation.max(-value);
            }
        }
        if self.ws.objective_row {
            let value = self
                .problem
                .objective
                .as_ref()
                .expect("objective row")
                .eval(x);
            if value.is_finite() {
                let r = self.objective_weight * value;
                cost += r * r;
            }
        }
        (cost, violation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::QuadraticForm;

    #[test]
    fn solves_bilinear_systems_quickly() {
        // x·y = 6, x − y = 1, x ≥ 0 → (3, 2).
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -6.0,
            linear: Vec::new(),
            quadratic: vec![(0, 1, 1.0)],
        });
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0), (1, -1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(0));
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 3.0).abs() < 1e-4);
        assert!((outcome.assignment[1] - 2.0).abs() < 1e-4);
        assert!(outcome.iterations < 100);
        // The solver reports the sparse shapes it worked with.
        assert_eq!(outcome.stats.nnz_jacobian, 5);
        assert!(outcome.stats.nnz_factor >= 2);
        assert!(outcome.stats.factorizations > 0);
        assert!(outcome.stats.factor_seconds >= 0.0);
        assert!(outcome.stats.restarts >= 1);
    }

    #[test]
    fn solves_sum_of_squares_style_systems_on_the_boundary() {
        // t = l², with t forced to 0: boundary solution l = 0, plus an
        // unrelated equality u = 5.
        let mut problem = Problem::new(3);
        problem.equalities.push(QuadraticForm {
            constant: 0.0,
            linear: vec![(0, 1.0)],
            quadratic: vec![(1, 1, -1.0)],
        });
        problem.equalities.push(QuadraticForm {
            constant: 0.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.equalities.push(QuadraticForm {
            constant: -5.0,
            linear: vec![(2, 1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(1));
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!(outcome.assignment[0].abs() < 1e-5);
        assert!((outcome.assignment[2] - 5.0).abs() < 1e-5);
    }

    #[test]
    fn respects_variable_bounds() {
        // x² = 4 with x ≥ 0 must pick the positive root.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -4.0,
            linear: Vec::new(),
            quadratic: vec![(0, 0, 1.0)],
        });
        problem.set_bound(0, 0.0, 100.0);
        let outcome = LmSolver::default().solve(&problem, Some(&[-3.0]));
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 2.0).abs() < 1e-5);
    }

    #[test]
    fn reports_infeasibility() {
        // x = 0 and x = 1.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm::variable(0));
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let outcome = LmSolver::default().solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Infeasible);
        // The residual of x = 0 ∧ x = 1 cannot drop below 1/2.
        assert!(outcome.stats.final_residual > 0.4);
    }

    #[test]
    fn zero_restarts_are_clamped_to_one_instead_of_panicking() {
        // restarts == 0 used to leave `pick_best` with no outcomes, hitting
        // the `expect("at least one restart runs")`.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -2.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let solver = LmSolver::new(LmOptions {
            restarts: 0,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 2.0).abs() < 1e-6);
        assert_eq!(outcome.stats.restarts, 1);
    }

    #[test]
    fn nan_objective_does_not_poison_best_candidate_selection() {
        // An objective that evaluates to NaN everywhere must not block the
        // violation-driven candidate updates: the solver should still find
        // the feasible point of the constraints.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -3.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.objective = Some(QuadraticForm {
            constant: f64::NAN,
            linear: Vec::new(),
            quadratic: Vec::new(),
        });
        let solver = LmSolver::new(LmOptions {
            objective_weight: 0.05,
            restarts: 2,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, Some(&[0.0]));
        assert!(outcome.assignment[0].is_finite());
        assert!(
            (outcome.assignment[0] - 3.0).abs() < 1e-4,
            "assignment {} violation {}",
            outcome.assignment[0],
            outcome.violation
        );
    }

    #[test]
    fn soft_objective_prefers_smaller_values_among_feasible_points() {
        // x ≥ 3 (no equalities), minimize x via the soft objective.
        let mut problem = Problem::new(1);
        problem.inequalities.push(QuadraticForm {
            constant: -3.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.objective = Some(QuadraticForm::variable(0));
        let solver = LmSolver::new(LmOptions {
            objective_weight: 0.05,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, Some(&[50.0]));
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!(outcome.assignment[0] < 10.0);
    }

    #[test]
    fn stalled_restarts_bail_out_with_their_best_point() {
        // x² + 1 = 0 is infeasible: from a far warm start the residual
        // (x²+1)² keeps shrinking by ever-smaller amounts as x → 0, so
        // every step is accepted and the pre-stall solver burned the whole
        // iteration budget. Stall detection must cut the run short while
        // still returning the best (violation ≈ 1) point.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: 1.0,
            linear: Vec::new(),
            quadratic: vec![(0, 0, 1.0)],
        });
        let solver = LmSolver::new(LmOptions {
            max_iterations: 10_000,
            restarts: 1,
            stall_iterations: 10,
            ..LmOptions::default()
        });
        let outcome = solver.solve(&problem, Some(&[5.0]));
        assert_eq!(outcome.status, SolveStatus::Infeasible);
        assert!(
            outcome.stats.iterations < 500,
            "stall detection did not bail: {} iterations",
            outcome.stats.iterations
        );
        assert!(
            (outcome.violation - 1.0).abs() < 0.05,
            "best-so-far point was not kept: violation {}",
            outcome.violation
        );
    }

    #[test]
    fn the_wall_clock_deadline_stops_the_solve() {
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -2.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let solver = LmSolver::new(LmOptions {
            restarts: 1,
            max_seconds: 1e-9,
            ..LmOptions::default()
        });
        // The deadline fires before the first iteration; the warm start is
        // returned untouched as the best-so-far point.
        let outcome = solver.solve(&problem, Some(&[0.5]));
        assert_eq!(outcome.stats.iterations, 0);
        assert!((outcome.assignment[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sparse_normal_step_matches_the_dense_oracle() {
        // One LM normal-equations solve, sparse vs dense, on a seeded
        // random quadratic system: (JᵀJ + λ(1 + diag(JᵀJ))) s = Jᵀr must
        // agree with the dense computation built from the same rows.
        use polyinv_arith::{Matrix, Vector};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};

        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 6 + (seed as usize % 5);
            let m = n + 3;
            let mut problem = Problem::new(n);
            for _ in 0..m {
                let a = rng.random_range(0..n as u64) as usize;
                let b = rng.random_range(0..n as u64) as usize;
                let (lo, hi) = (a.min(b), a.max(b));
                problem.equalities.push(QuadraticForm {
                    constant: rng.random_range(-1.0..1.0),
                    linear: vec![(a, rng.random_range(-2.0..2.0))],
                    quadratic: vec![(lo, hi, rng.random_range(-2.0..2.0))],
                });
            }
            let x: Vec<f64> = (0..n).map(|_| rng.random_range(-1.0..1.0)).collect();
            let lambda = 1e-3;

            // Sparse path.
            let ws = LmWorkspace::build(&problem, 0.0);
            let mut eval = Evaluator::new(&problem, &ws, 0.0);
            let _ = eval.residuals_and_normal(&x);
            let mut numeric = ws.symbolic.numeric();
            let diag = ws.pattern.diag_positions();
            let diag_add: Vec<f64> = (0..n)
                .map(|i| lambda * (1.0 + eval.jtj_values[diag[i]]))
                .collect();
            assert!(ws
                .symbolic
                .factor(&eval.jtj_values, &diag_add, &mut numeric));
            let mut sparse_step = eval.jtr.clone();
            ws.symbolic.solve(&mut numeric, &mut sparse_step);

            // Dense oracle built from the same residual rows.
            let mut jacobian = Matrix::zeros(m, n);
            let mut residuals = vec![0.0; m];
            let mut grad = vec![0.0; n];
            for (row, eq) in problem.equalities.iter().enumerate() {
                residuals[row] = eq.eval(&x);
                grad.fill(0.0);
                eq.add_gradient(&x, &mut grad, 1.0);
                for (col, &g) in grad.iter().enumerate() {
                    jacobian.set(row, col, g);
                }
            }
            let jt = jacobian.transpose();
            let mut jtj = &jt * &jacobian;
            for i in 0..n {
                let d = jtj.get(i, i);
                jtj.add_to(i, i, lambda * (1.0 + d));
            }
            let jtr = jt.mul_vec(&Vector::from_slice(&residuals));
            let dense_step = jtj.solve(&jtr).expect("damped system is PD");
            for i in 0..n {
                assert!(
                    (sparse_step[i] - dense_step[i]).abs() < 1e-7 * (1.0 + dense_step[i].abs()),
                    "seed {seed}: step mismatch at {i}: {} vs {}",
                    sparse_step[i],
                    dense_step[i]
                );
            }
        }
    }
}
