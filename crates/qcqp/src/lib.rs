//! Quadratically-constrained programming and sum-of-squares feasibility.
//!
//! The paper solves its weak invariant-synthesis problems by handing a QCLP
//! (quadratically-constrained linear program) to the commercial interior
//! point solver LOQO. This crate is the open substitute used by the
//! reproduction (see DESIGN.md §4): the reduction that produces the systems
//! is identical to the paper's, only the numerical back-end differs.
//!
//! Solvers are exposed through the [`QcqpBackend`] trait (see
//! [`backend`]), so the synthesis pipeline in the `polyinv` crate is
//! back-end agnostic. Three solvers are provided:
//!
//! * [`LmSolver`] (`"lm"`) — projected Levenberg–Marquardt on the equality
//!   residuals with **parallel multi-start restarts**; the default for the
//!   Cholesky-encoded systems of the benchmark suite.
//! * [`AlmSolver`] (`"penalty"`) — an augmented-Lagrangian method with an
//!   Adam-style first-order inner loop for general (non-convex) quadratic
//!   systems, with optional projection onto PSD blocks after every step.
//! * [`FeasibilitySolver`] — alternating projections (POCS) between an
//!   affine subspace (the linear equalities), the PSD cones of the Gram
//!   blocks and box bounds. It solves the *verification* problems obtained
//!   by fixing the template coefficients, which are convex.

pub mod backend;
pub mod feasibility;
pub mod lm;
pub mod par;
pub mod penalty;
pub mod problem;
pub mod stats;

pub use backend::{backend_by_name, default_backend, QcqpBackend};
pub use feasibility::{FeasibilityOptions, FeasibilitySolver};
pub use lm::{Evaluator as LmEvaluator, LmOptions, LmSolver, LmWorkspace};
pub use par::{configured_threads, ThreadBudget, PAR_ROW_THRESHOLD};
pub use penalty::{AlmOptions, AlmSolver, SolveOutcome, SolveStatus};
pub use problem::{Problem, ProblemStructure, PsdConstraint, QuadraticForm};
pub use stats::SolverStats;
