//! Quadratically-constrained programming and sum-of-squares feasibility.
//!
//! The paper solves its weak invariant-synthesis problems by handing a QCLP
//! (quadratically-constrained linear program) to the commercial interior
//! point solver LOQO. This crate is the open substitute used by the
//! reproduction (see DESIGN.md §4): the reduction that produces the systems
//! is identical to the paper's, only the numerical back-end differs.
//!
//! Three solvers are provided:
//!
//! * [`AlmSolver`] — an augmented-Lagrangian method with an Adam-style
//!   first-order inner loop for general (non-convex) quadratic systems, with
//!   optional projection onto PSD blocks after every step. This is the
//!   workhorse used by weak synthesis.
//! * [`FeasibilitySolver`] — alternating projections (POCS) between an
//!   affine subspace (the linear equalities), the PSD cones of the Gram
//!   blocks and box bounds. It solves the *verification* problems obtained
//!   by fixing the template coefficients, which are convex.
//! * [`least_squares`](problem::Problem::least_squares_step) style helpers
//!   used by the bilinear alternation in the `polyinv` crate.

pub mod feasibility;
pub mod lm;
pub mod penalty;
pub mod problem;

pub use feasibility::{FeasibilityOptions, FeasibilitySolver};
pub use lm::{LmOptions, LmSolver};
pub use penalty::{AlmOptions, AlmSolver, SolveOutcome, SolveStatus};
pub use problem::{Problem, PsdConstraint, QuadraticForm};
