//! An augmented-Lagrangian solver with an Adam first-order inner loop.
//!
//! This is the general-purpose back-end for the non-convex quadratic systems
//! produced by the Cholesky encoding (the paper's QCLP form). It makes no
//! global-optimality claim — neither does any practical QCLP solver,
//! including the one used by the paper — but any feasible point it returns
//! satisfies the generated system and therefore yields a sound inductive
//! invariant (Lemma 3.6), which is re-checked downstream.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::problem::Problem;
use crate::stats::SolverStats;

/// Configuration of the augmented-Lagrangian solver.
#[derive(Debug, Clone)]
pub struct AlmOptions {
    /// Number of outer (multiplier-update) iterations.
    pub outer_iterations: usize,
    /// Number of Adam steps per outer iteration.
    pub inner_iterations: usize,
    /// Initial penalty coefficient ρ.
    pub initial_penalty: f64,
    /// Multiplicative growth of ρ after every outer iteration.
    pub penalty_growth: f64,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Feasibility tolerance declaring success.
    pub tolerance: f64,
    /// Number of random restarts (the best run is returned).
    pub restarts: usize,
    /// Random seed (restart `k` uses `seed + k`).
    pub seed: u64,
    /// Standard deviation of the random initialization noise.
    pub init_scale: f64,
    /// Wall-clock budget in seconds over all restarts; once exceeded, the
    /// current restart stops at the next outer-iteration boundary and no
    /// further restarts launch. `0` disables the deadline.
    pub max_seconds: f64,
}

impl Default for AlmOptions {
    fn default() -> Self {
        AlmOptions {
            outer_iterations: 25,
            inner_iterations: 400,
            initial_penalty: 10.0,
            penalty_growth: 1.6,
            learning_rate: 0.05,
            tolerance: 1e-6,
            restarts: 3,
            seed: 0x5eed,
            init_scale: 0.1,
            max_seconds: 0.0,
        }
    }
}

/// Whether a solve attempt reached feasibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// The returned point satisfies every constraint within the tolerance.
    Feasible,
    /// The solver stopped with the best point found, which still violates
    /// some constraint by more than the tolerance.
    Infeasible,
}

/// The result of a solve attempt.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The best assignment found.
    pub assignment: Vec<f64>,
    /// The worst constraint violation at that assignment.
    pub violation: f64,
    /// The objective value at that assignment (0 if no objective).
    pub objective: f64,
    /// Feasibility status.
    pub status: SolveStatus,
    /// Inner iterations of the winning restart.
    pub iterations: usize,
    /// Execution statistics aggregated over all restarts.
    pub stats: SolverStats,
}

/// The augmented-Lagrangian solver.
#[derive(Debug, Clone, Default)]
pub struct AlmSolver {
    options: AlmOptions,
}

impl AlmSolver {
    /// Creates a solver with the given options.
    pub fn new(options: AlmOptions) -> Self {
        AlmSolver { options }
    }

    /// Solves the problem starting from random initial points (plus an
    /// optional warm start) and returns the best outcome.
    pub fn solve(&self, problem: &Problem, warm_start: Option<&[f64]>) -> SolveOutcome {
        let mut best: Option<SolveOutcome> = None;
        let mut stats = SolverStats::default();
        let restarts = self.options.restarts.max(1);
        let started = std::time::Instant::now();
        let deadline = (self.options.max_seconds > 0.0).then_some(self.options.max_seconds);
        for restart in 0..restarts {
            if restart > 0
                && deadline.is_some_and(|budget| started.elapsed().as_secs_f64() >= budget)
            {
                break;
            }
            let mut rng = StdRng::seed_from_u64(self.options.seed.wrapping_add(restart as u64));
            let mut x = match (restart, warm_start) {
                (0, Some(start)) if start.len() == problem.num_vars => start.to_vec(),
                _ => (0..problem.num_vars)
                    .map(|_| rng.random_range(-self.options.init_scale..self.options.init_scale))
                    .collect(),
            };
            let remaining = deadline.map(|budget| budget - started.elapsed().as_secs_f64());
            let outcome = self.solve_from(problem, &mut x, &mut rng, remaining);
            stats.absorb_restart(&outcome.stats);
            let better = match &best {
                None => true,
                Some(current) => {
                    outcome.violation < current.violation
                        || (outcome.status == SolveStatus::Feasible
                            && current.status == SolveStatus::Feasible
                            && outcome.objective < current.objective)
                }
            };
            if better {
                best = Some(outcome);
            }
            if let Some(current) = &best {
                if current.status == SolveStatus::Feasible && problem.objective.is_none() {
                    // Pure feasibility problem: stop at the first success.
                    break;
                }
            }
        }
        let mut best = best.expect("at least one restart runs");
        stats.final_residual = best.stats.final_residual;
        // The ALM loop is sequential with serial evaluation throughout.
        stats.threads = 1;
        best.stats = stats;
        best
    }

    fn solve_from(
        &self,
        problem: &Problem,
        x: &mut [f64],
        rng: &mut StdRng,
        max_seconds: Option<f64>,
    ) -> SolveOutcome {
        let n = problem.num_vars;
        let opts = &self.options;
        let started = std::time::Instant::now();
        let mut rho = opts.initial_penalty;
        // Multiplier estimates.
        let mut lambda_eq = vec![0.0; problem.equalities.len()];
        let mut lambda_ineq = vec![0.0; problem.inequalities.len()];
        // Adam state.
        let mut m = vec![0.0; n];
        let mut v = vec![0.0; n];
        let beta1 = 0.9;
        let beta2 = 0.999;
        let eps = 1e-8;
        let mut total_iterations = 0usize;
        // Variables no constraint or objective mentions never receive a
        // gradient, so their Adam state stays zero and their value never
        // moves: the update loop can skip them outright. The gradient
        // buffer is likewise allocated once and re-zeroed per step instead
        // of reallocated `outer × inner` times.
        let structure = problem.structure();
        let active = &structure.active_vars;
        let mut grad = vec![0.0; n];

        let objective_at = |point: &[f64]| {
            problem
                .objective
                .as_ref()
                .map(|o| o.eval(point))
                .unwrap_or(0.0)
        };
        let mut best_x = x.to_vec();
        let mut best_violation = problem.max_violation(x);
        let mut best_objective = objective_at(x);

        for outer in 0..opts.outer_iterations {
            if max_seconds.is_some_and(|budget| started.elapsed().as_secs_f64() >= budget) {
                break;
            }
            let mut step_count = 0.0f64;
            for _ in 0..opts.inner_iterations {
                total_iterations += 1;
                step_count += 1.0;
                for &i in active {
                    grad[i] = 0.0;
                }
                // Objective gradient.
                if let Some(objective) = &problem.objective {
                    objective.add_gradient(x, &mut grad, 1.0);
                }
                // Equalities: λ·c(x) + ρ/2·c(x)² → gradient (λ + ρ·c)·∇c.
                for (eq, &lambda) in problem.equalities.iter().zip(&lambda_eq) {
                    let value = eq.eval(x);
                    eq.add_gradient(x, &mut grad, lambda + rho * value);
                }
                // Inequalities g(x) ≥ 0 handled as max(0, λ − ρ·g)-style
                // augmented terms: gradient −(λ − ρ·g)⁺·∇g.
                for (ineq, &lambda) in problem.inequalities.iter().zip(&lambda_ineq) {
                    let value = ineq.eval(x);
                    let slack = lambda - rho * value;
                    if slack > 0.0 {
                        ineq.add_gradient(x, &mut grad, -slack);
                    }
                }
                // Adam update over the active variables only.
                let t = step_count;
                for &i in active {
                    m[i] = beta1 * m[i] + (1.0 - beta1) * grad[i];
                    v[i] = beta2 * v[i] + (1.0 - beta2) * grad[i] * grad[i];
                    let m_hat = m[i] / (1.0 - beta1.powf(t));
                    let v_hat = v[i] / (1.0 - beta2.powf(t));
                    x[i] -= opts.learning_rate * m_hat / (v_hat.sqrt() + eps);
                }
                problem.clamp(x);
            }
            // Project PSD blocks after each inner phase.
            for block in &problem.psd {
                block.project(x);
            }
            // Multiplier updates.
            for (eq, lambda) in problem.equalities.iter().zip(lambda_eq.iter_mut()) {
                *lambda += rho * eq.eval(x);
                *lambda = lambda.clamp(-1e6, 1e6);
            }
            for (ineq, lambda) in problem.inequalities.iter().zip(lambda_ineq.iter_mut()) {
                *lambda = (*lambda - rho * ineq.eval(x)).clamp(0.0, 1e6);
            }
            rho *= opts.penalty_growth;

            let violation = problem.max_violation(x);
            let objective = objective_at(x);
            // Among feasible points prefer the better objective; otherwise
            // prefer the smaller violation.
            let better = if violation <= opts.tolerance && best_violation <= opts.tolerance {
                objective < best_objective
            } else {
                violation < best_violation
            };
            if better {
                best_violation = violation;
                best_objective = objective;
                best_x = x.to_vec();
            }
            if violation <= opts.tolerance && problem.objective.is_none() {
                break;
            }
            // Mild perturbation if progress stalls in later outer rounds.
            if outer > 0 && outer % 8 == 0 && violation > 1e3 * opts.tolerance {
                for value in x.iter_mut() {
                    *value += rng.random_range(-0.01..0.01);
                }
            }
        }

        let violation = best_violation;
        // Sum-of-squares residual at the returned point (equality residuals
        // plus inequality hinges), for parity with the LM statistics.
        let final_residual: f64 = problem
            .equalities
            .iter()
            .map(|eq| {
                let r = eq.eval(&best_x);
                r * r
            })
            .chain(problem.inequalities.iter().map(|ineq| {
                let r = (-ineq.eval(&best_x)).max(0.0);
                r * r
            }))
            .sum();
        SolveOutcome {
            assignment: best_x,
            violation,
            objective: best_objective,
            status: if violation <= opts.tolerance {
                SolveStatus::Feasible
            } else {
                SolveStatus::Infeasible
            },
            iterations: total_iterations,
            stats: SolverStats {
                iterations: total_iterations,
                restarts: 1,
                final_residual,
                ..SolverStats::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{PsdConstraint, QuadraticForm};

    fn options_fast() -> AlmOptions {
        AlmOptions {
            outer_iterations: 30,
            inner_iterations: 300,
            restarts: 2,
            ..AlmOptions::default()
        }
    }

    #[test]
    fn solves_a_simple_equality_system() {
        // x + y = 2, x - y = 0  →  x = y = 1.
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -2.0,
            linear: vec![(0, 1.0), (1, 1.0)],
            quadratic: Vec::new(),
        });
        problem.equalities.push(QuadraticForm {
            constant: 0.0,
            linear: vec![(0, 1.0), (1, -1.0)],
            quadratic: Vec::new(),
        });
        let outcome = AlmSolver::new(options_fast()).solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 1.0).abs() < 1e-3);
        assert!((outcome.assignment[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn solves_a_bilinear_system() {
        // x·y = 6, x - y = 1, x ≥ 0  →  x = 3, y = 2.
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -6.0,
            linear: Vec::new(),
            quadratic: vec![(0, 1, 1.0)],
        });
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0), (1, -1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(0));
        let outcome = AlmSolver::new(options_fast()).solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 3.0).abs() < 1e-2);
        assert!((outcome.assignment[1] - 2.0).abs() < 1e-2);
    }

    #[test]
    fn warm_start_is_used() {
        // x² = 4 has the two solutions ±2; a warm start near −2 should stay
        // in that basin.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -4.0,
            linear: Vec::new(),
            quadratic: vec![(0, 0, 1.0)],
        });
        let outcome = AlmSolver::new(options_fast()).solve(&problem, Some(&[-1.8]));
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!(outcome.assignment[0] < 0.0);
    }

    #[test]
    fn minimizes_the_objective_subject_to_constraints() {
        // min x subject to x ≥ 3.
        let mut problem = Problem::new(1);
        problem.inequalities.push(QuadraticForm {
            constant: -3.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.objective = Some(QuadraticForm::variable(0));
        let outcome = AlmSolver::new(AlmOptions {
            outer_iterations: 60,
            inner_iterations: 400,
            restarts: 1,
            ..AlmOptions::default()
        })
        .solve(&problem, Some(&[10.0]));
        assert_eq!(outcome.status, SolveStatus::Feasible);
        assert!((outcome.assignment[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn psd_blocks_are_respected() {
        // 2×2 symmetric matrix with fixed off-diagonal 1 must be PSD:
        // entries (q00, q01, q11); equality q01 = 1; PSD → q00·q11 ≥ 1.
        let mut problem = Problem::new(3);
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(1, 1.0)],
            quadratic: Vec::new(),
        });
        problem.psd.push(PsdConstraint {
            dim: 2,
            indices: vec![0, 1, 2],
        });
        let outcome = AlmSolver::new(options_fast()).solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Feasible);
        let q00 = outcome.assignment[0];
        let q11 = outcome.assignment[2];
        assert!(q00 * q11 >= 1.0 - 1e-3);
    }

    #[test]
    fn reports_infeasibility_for_contradictory_systems() {
        // x = 0 and x = 1 simultaneously.
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm::variable(0));
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        let outcome = AlmSolver::new(options_fast()).solve(&problem, None);
        assert_eq!(outcome.status, SolveStatus::Infeasible);
        assert!(outcome.violation > 0.1);
    }
}
