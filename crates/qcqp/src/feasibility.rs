//! Alternating-projection feasibility solver for affine + PSD + box
//! problems.
//!
//! When the template coefficients (s-variables) are fixed — i.e. when a
//! *given* invariant is being checked — the Gram-encoded system of Step 3
//! becomes convex: linear equalities over the Gram entries and the
//! positivity witnesses, PSD constraints on the Gram blocks and box bounds.
//! Feasibility of such a system is decided here by the projection-onto-
//! convex-sets (POCS) method:
//!
//! 1. project the current point onto the affine subspace defined by the
//!    equalities (a single dense least-squares solve, factored once);
//! 2. project onto every PSD block (eigenvalue clipping) and the box;
//! 3. repeat until the distances moved vanish (feasible) or stagnate above
//!    the tolerance (numerically infeasible).

use polyinv_arith::{Matrix, Vector};

use crate::problem::Problem;

/// Configuration of the alternating-projection solver.
#[derive(Debug, Clone)]
pub struct FeasibilityOptions {
    /// Maximum number of projection rounds.
    pub max_iterations: usize,
    /// Tolerance on the final constraint violation.
    pub tolerance: f64,
    /// Tikhonov damping used when the equality system is rank deficient.
    pub damping: f64,
}

impl Default for FeasibilityOptions {
    fn default() -> Self {
        FeasibilityOptions {
            max_iterations: 400,
            tolerance: 1e-6,
            damping: 1e-9,
        }
    }
}

/// The alternating-projection solver.
#[derive(Debug, Clone, Default)]
pub struct FeasibilitySolver {
    options: FeasibilityOptions,
}

impl FeasibilitySolver {
    /// Creates a solver with the given options.
    pub fn new(options: FeasibilityOptions) -> Self {
        FeasibilitySolver { options }
    }

    /// Attempts to find a point satisfying all constraints of `problem`.
    ///
    /// Every equality of the problem must be affine; quadratic equalities
    /// are rejected.
    ///
    /// Returns `Some(assignment)` on success and `None` if no feasible point
    /// was found within the iteration budget.
    ///
    /// # Panics
    ///
    /// Panics if the problem contains non-affine equality or inequality
    /// constraints.
    pub fn solve(&self, problem: &Problem, start: Option<&[f64]>) -> Option<Vec<f64>> {
        for eq in problem.equalities.iter().chain(&problem.inequalities) {
            assert!(
                eq.is_affine(),
                "the alternating-projection solver requires affine constraints"
            );
        }
        let n = problem.num_vars;
        let m = problem.equalities.len();
        let mut x = match start {
            Some(values) if values.len() == n => values.to_vec(),
            _ => vec![0.0; n],
        };
        if m == 0 && problem.psd.is_empty() && problem.inequalities.is_empty() {
            return Some(x);
        }

        // Assemble the coefficient matrix A of the equality system A·x = b
        // (b enters through the constant terms when residuals are evaluated).
        let mut a = Matrix::zeros(m, n);
        for (row, eq) in problem.equalities.iter().enumerate() {
            for &(col, coeff) in &eq.linear {
                a.add_to(row, col, coeff);
            }
        }
        let at = a.transpose();
        // The orthogonal projection onto {x : A·x = b} is
        // x − Aᵀ·(A·Aᵀ)⁻¹·(A·x − b). The Gram matrix A·Aᵀ is m×m and is
        // regularized to tolerate redundant rows; it is inverted once.
        let mut aat = &a * &at;
        for i in 0..m {
            aat.add_to(i, i, self.options.damping.max(1e-12));
        }
        let aat_inverse = aat.inverse();

        let mut best_violation = f64::INFINITY;
        let mut best_x = x.clone();
        for _ in 0..self.options.max_iterations {
            // Projection onto the affine subspace: minimize ‖y − x‖ s.t.
            // A·y = b. Solved approximately through the damped normal
            // equations of the KKT system: y = x − Aᵀ·(A·Aᵀ)⁻¹·(A·x − b).
            // We use the equivalent least-norm correction obtained from
            // (AᵀA + δI)·Δ = Aᵀ·(A·x − b), y = x − Δ, which is accurate for
            // small δ and tolerates rank deficiency.
            let ax_minus_b: Vector = {
                let mut r = Vector::zeros(m);
                for (row, eq) in problem.equalities.iter().enumerate() {
                    r[row] = eq.eval(&x);
                }
                r
            };
            // Δ = Aᵀ·(A·Aᵀ + δI)⁻¹·(A·x − b).
            let y = match &aat_inverse {
                Some(inv) => Some(inv.mul_vec(&ax_minus_b)),
                None => aat.solve(&ax_minus_b),
            };
            if let Some(y) = y {
                let delta = at.mul_vec(&y);
                for i in 0..n {
                    x[i] -= delta[i];
                }
            }
            // Projection onto the PSD cones.
            for block in &problem.psd {
                block.project(&mut x);
            }
            // Projection onto affine inequalities (half-spaces) and the box.
            for ineq in &problem.inequalities {
                let value = ineq.eval(&x);
                if value < 0.0 {
                    // Move along the constraint normal to the boundary.
                    let norm_sq: f64 = ineq.linear.iter().map(|&(_, c)| c * c).sum();
                    if norm_sq > 1e-15 {
                        let step = -value / norm_sq;
                        for &(i, c) in &ineq.linear {
                            x[i] += step * c;
                        }
                    }
                }
            }
            problem.clamp(&mut x);

            let violation = problem.max_violation(&x);
            if violation < best_violation {
                best_violation = violation;
                best_x = x.clone();
            }
            if violation <= self.options.tolerance {
                return Some(x);
            }
        }
        if best_violation <= self.options.tolerance * 10.0 {
            Some(best_x)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{PsdConstraint, QuadraticForm};

    #[test]
    fn solves_affine_equalities() {
        // x + y = 4, x − y = 2 → (3, 1).
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -4.0,
            linear: vec![(0, 1.0), (1, 1.0)],
            quadratic: Vec::new(),
        });
        problem.equalities.push(QuadraticForm {
            constant: -2.0,
            linear: vec![(0, 1.0), (1, -1.0)],
            quadratic: Vec::new(),
        });
        let solution = FeasibilitySolver::default().solve(&problem, None).unwrap();
        assert!((solution[0] - 3.0).abs() < 1e-4);
        assert!((solution[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn solves_affine_plus_psd() {
        // Q = [[a, 1], [1, b]] PSD with a + b = 3: e.g. a·b ≥ 1.
        let mut problem = Problem::new(3);
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(1, 1.0)],
            quadratic: Vec::new(),
        });
        problem.equalities.push(QuadraticForm {
            constant: -3.0,
            linear: vec![(0, 1.0), (2, 1.0)],
            quadratic: Vec::new(),
        });
        problem.psd.push(PsdConstraint {
            dim: 2,
            indices: vec![0, 1, 2],
        });
        let solution = FeasibilitySolver::default().solve(&problem, None).unwrap();
        assert!((solution[1] - 1.0).abs() < 1e-4);
        assert!((solution[0] + solution[2] - 3.0).abs() < 1e-4);
        assert!(solution[0] * solution[2] >= 1.0 - 1e-3);
    }

    #[test]
    fn detects_infeasible_psd_systems() {
        // [[a, 2], [2, b]] PSD with a = b = 1 is infeasible (det = −3).
        let mut problem = Problem::new(3);
        for (index, value) in [(0usize, 1.0f64), (1, 2.0), (2, 1.0)] {
            problem.equalities.push(QuadraticForm {
                constant: -value,
                linear: vec![(index, 1.0)],
                quadratic: Vec::new(),
            });
        }
        problem.psd.push(PsdConstraint {
            dim: 2,
            indices: vec![0, 1, 2],
        });
        assert!(FeasibilitySolver::default().solve(&problem, None).is_none());
    }

    #[test]
    fn respects_affine_inequalities_and_bounds() {
        // x + y = 1, x ≥ 0.8, y ≥ 0 → x ∈ [0.8, 1].
        let mut problem = Problem::new(2);
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: vec![(0, 1.0), (1, 1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm {
            constant: -0.8,
            linear: vec![(0, 1.0)],
            quadratic: Vec::new(),
        });
        problem.inequalities.push(QuadraticForm::variable(1));
        let solution = FeasibilitySolver::default().solve(&problem, None).unwrap();
        assert!(solution[0] >= 0.8 - 1e-4);
        assert!(solution[1] >= -1e-4);
        assert!((solution[0] + solution[1] - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "affine constraints")]
    fn rejects_quadratic_constraints() {
        let mut problem = Problem::new(1);
        problem.equalities.push(QuadraticForm {
            constant: -1.0,
            linear: Vec::new(),
            quadratic: vec![(0, 0, 1.0)],
        });
        let _ = FeasibilitySolver::default().solve(&problem, None);
    }
}
