//! Tiny scoped-thread fan-out used by the multi-start machinery.
//!
//! The solvers and the synthesis pipeline repeatedly need the same shape of
//! parallelism: run `count` independent, CPU-bound closures and collect
//! their results **in index order** so that downstream selection stays
//! deterministic. This helper provides exactly that on `std::thread::scope`
//! (no external dependency), bounding live threads by the machine's
//! available parallelism.

/// Runs `f(0..count)` on worker threads and returns the results in index
/// order. Falls back to a plain loop when `count <= 1`.
///
/// # Panics
///
/// Propagates a panic from any worker closure.
pub fn parallel_indexed<R, F>(count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_indexed_until(count, f, |_| false)
}

/// Like [`parallel_indexed`], but stops scheduling further work once any
/// completed result satisfies `stop` (results computed so far are still
/// returned, in index order, possibly fewer than `count`).
///
/// This restores the sequential "first success wins" economy of multi-start
/// loops: a wave of up to `available_parallelism` closures runs at a time,
/// and later waves are skipped when an earlier one already produced a
/// satisfying result.
///
/// # Panics
///
/// Propagates a panic from any worker closure.
pub fn parallel_indexed_until<R, F, S>(count: usize, f: F, stop: S) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: Fn(&R) -> bool,
{
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1);
    if count <= 1 || workers == 1 {
        let mut results = Vec::with_capacity(count);
        for index in 0..count {
            let result = f(index);
            let done = stop(&result);
            results.push(result);
            if done {
                break;
            }
        }
        return results;
    }
    std::thread::scope(|scope| {
        let mut results: Vec<R> = Vec::with_capacity(count);
        let indices: Vec<usize> = (0..count).collect();
        for chunk in indices.chunks(workers) {
            let handles: Vec<_> = chunk
                .iter()
                .map(|&index| {
                    scope.spawn({
                        let f = &f;
                        move || f(index)
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().expect("worker thread panicked"));
            }
            if results.iter().any(&stop) {
                break;
            }
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let results = parallel_indexed(37, |i| i * i);
        assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn early_exit_skips_later_waves() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let results = parallel_indexed_until(
            100,
            |i| {
                calls.fetch_add(1, Ordering::SeqCst);
                i
            },
            |&i| i == 0,
        );
        // The first wave contains index 0, which satisfies the stop
        // predicate, so far fewer than 100 closures run.
        assert!(results.contains(&0));
        assert!(calls.load(Ordering::SeqCst) < 100);
    }

    #[test]
    fn zero_and_one_item_shortcuts_work() {
        assert_eq!(parallel_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_indexed(1, |i| i + 10), vec![10]);
    }
}
