//! Tiny scoped-thread fan-out used by the multi-start machinery.
//!
//! The solvers and the synthesis pipeline repeatedly need the same shape of
//! parallelism: run `count` independent, CPU-bound closures and collect
//! their results **in index order** so that downstream selection stays
//! deterministic. This helper provides exactly that on `std::thread::scope`
//! (no external dependency), bounding live threads by the machine's
//! available parallelism.

/// Residual-row count above which a single solve is large enough that the
/// thread budget is better spent *inside* one iteration (chunked residual
/// evaluation, subtree-parallel factorization) than across restarts.
pub const PAR_ROW_THRESHOLD: usize = 2048;

/// The machine-wide thread budget: `POLYINV_THREADS` when set to a positive
/// integer, otherwise the runtime's available parallelism.
///
/// Every parallel site in the solver (restart fan-out, chunked evaluation,
/// subtree factorization) derives its worker count from this single knob so
/// the layers compose instead of multiplying.
pub fn configured_threads() -> usize {
    match std::env::var("POLYINV_THREADS") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => available_threads(),
        },
        Err(_) => available_threads(),
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(1)
}

/// How a solve splits the global thread budget between restart-level and
/// intra-iteration parallelism.
///
/// The two axes multiply (`restarts × eval workers` live threads), so the
/// arbiter always gives the whole budget to exactly one axis: big systems
/// (≥ [`PAR_ROW_THRESHOLD`] residual rows) run restarts sequentially and
/// spend every thread inside the iteration; small systems keep PR 1's
/// restart fan-out and run each iteration serially.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadBudget {
    /// Concurrent restarts (1 = sequential restarts).
    pub restart_threads: usize,
    /// Worker threads per iteration for residual evaluation and numeric
    /// factorization (1 = serial iteration core).
    pub eval_threads: usize,
}

impl ThreadBudget {
    /// Splits the global budget ([`configured_threads`]) for a problem with
    /// `rows` residual rows.
    pub fn for_rows(rows: usize) -> Self {
        Self::split(configured_threads(), rows)
    }

    /// Splits an explicit `budget` for a problem with `rows` residual rows.
    pub fn split(budget: usize, rows: usize) -> Self {
        let budget = budget.max(1);
        if rows >= PAR_ROW_THRESHOLD {
            ThreadBudget {
                restart_threads: 1,
                eval_threads: budget,
            }
        } else {
            ThreadBudget {
                restart_threads: budget,
                eval_threads: 1,
            }
        }
    }
}

/// Runs `f(0..count)` on worker threads and returns the results in index
/// order. Falls back to a plain loop when `count <= 1`.
///
/// # Panics
///
/// Propagates a panic from any worker closure.
pub fn parallel_indexed<R, F>(count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_indexed_until(count, f, |_| false)
}

/// Like [`parallel_indexed`], but stops scheduling further work once any
/// completed result satisfies `stop` (results computed so far are still
/// returned, in index order, possibly fewer than `count`).
///
/// This restores the sequential "first success wins" economy of multi-start
/// loops: a wave of up to `available_parallelism` closures runs at a time,
/// and later waves are skipped when an earlier one already produced a
/// satisfying result.
///
/// # Panics
///
/// Propagates a panic from any worker closure.
pub fn parallel_indexed_until<R, F, S>(count: usize, f: F, stop: S) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: Fn(&R) -> bool,
{
    parallel_indexed_until_bounded(count, configured_threads(), f, stop)
}

/// Like [`parallel_indexed_until`], but with an explicit cap on concurrent
/// workers — the hook the [`ThreadBudget`] arbiter uses to keep restart-level
/// fan-out from multiplying with intra-iteration workers.
///
/// # Panics
///
/// Propagates a panic from any worker closure.
pub fn parallel_indexed_until_bounded<R, F, S>(
    count: usize,
    workers: usize,
    f: F,
    stop: S,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
    S: Fn(&R) -> bool,
{
    let workers = workers.max(1);
    if count <= 1 || workers == 1 {
        let mut results = Vec::with_capacity(count);
        for index in 0..count {
            let result = f(index);
            let done = stop(&result);
            results.push(result);
            if done {
                break;
            }
        }
        return results;
    }
    std::thread::scope(|scope| {
        let mut results: Vec<R> = Vec::with_capacity(count);
        let indices: Vec<usize> = (0..count).collect();
        for chunk in indices.chunks(workers) {
            let handles: Vec<_> = chunk
                .iter()
                .map(|&index| {
                    scope.spawn({
                        let f = &f;
                        move || f(index)
                    })
                })
                .collect();
            for handle in handles {
                results.push(handle.join().expect("worker thread panicked"));
            }
            if results.iter().any(&stop) {
                break;
            }
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let results = parallel_indexed(37, |i| i * i);
        assert_eq!(results, (0..37).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn early_exit_skips_later_waves() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let results = parallel_indexed_until(
            100,
            |i| {
                calls.fetch_add(1, Ordering::SeqCst);
                i
            },
            |&i| i == 0,
        );
        // The first wave contains index 0, which satisfies the stop
        // predicate, so far fewer than 100 closures run.
        assert!(results.contains(&0));
        assert!(calls.load(Ordering::SeqCst) < 100);
    }

    #[test]
    fn zero_and_one_item_shortcuts_work() {
        assert_eq!(parallel_indexed(0, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_indexed(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn bounded_fan_out_respects_an_explicit_worker_cap() {
        let results = parallel_indexed_until_bounded(23, 3, |i| i * 2, |_| false);
        assert_eq!(results, (0..23).map(|i| i * 2).collect::<Vec<_>>());
        // A zero cap is clamped to the serial path, not a hang.
        let serial = parallel_indexed_until_bounded(5, 0, |i| i, |_| false);
        assert_eq!(serial, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn the_arbiter_gives_the_budget_to_exactly_one_axis() {
        let big = ThreadBudget::split(8, PAR_ROW_THRESHOLD);
        assert_eq!(
            big,
            ThreadBudget {
                restart_threads: 1,
                eval_threads: 8
            }
        );
        let small = ThreadBudget::split(8, PAR_ROW_THRESHOLD - 1);
        assert_eq!(
            small,
            ThreadBudget {
                restart_threads: 8,
                eval_threads: 1
            }
        );
        // A degenerate budget still yields at least one worker per axis.
        let one = ThreadBudget::split(0, 10);
        assert_eq!(one.restart_threads, 1);
        assert_eq!(one.eval_threads, 1);
    }

    #[test]
    fn configured_threads_reads_the_env_knob() {
        // Env mutation is process-global: keep every case inside this one
        // test so no parallel test observes a half-set variable.
        let saved = std::env::var("POLYINV_THREADS").ok();
        std::env::set_var("POLYINV_THREADS", "6");
        assert_eq!(configured_threads(), 6);
        std::env::set_var("POLYINV_THREADS", "0");
        assert!(configured_threads() >= 1);
        std::env::set_var("POLYINV_THREADS", "nonsense");
        assert!(configured_threads() >= 1);
        match saved {
            Some(value) => std::env::set_var("POLYINV_THREADS", value),
            None => std::env::remove_var("POLYINV_THREADS"),
        }
    }
}
