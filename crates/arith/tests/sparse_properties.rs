//! Property tests pinning the sparse substrate against the dense oracle:
//! CSR mat-vec, JᵀJ accumulation from sparse rows, and the minimum-degree
//! LDLᵀ factor-solve must agree with the corresponding dense
//! [`Matrix`](polyinv_arith::Matrix) computations on random sparse systems.

use polyinv_arith::sparse::{CsrMatrix, JtjPattern, JtjScratch, SymbolicLdl};
use polyinv_arith::{Matrix, Vector};
use proptest::prelude::*;

/// A random sparse system derived from raw proptest material: `rows × cols`
/// shape plus one short `(col, value)` list per row with strictly
/// increasing columns.
#[derive(Debug, Clone)]
struct SparseSystem {
    rows: usize,
    cols: usize,
    entries: Vec<Vec<(usize, f64)>>,
}

/// Raw material for one system: the vendored proptest stand-in has no
/// `prop_flat_map`, so shapes and entries are drawn independently and the
/// entry columns are folded into range (sorted, deduplicated) here.
fn build_system(rows: usize, cols: usize, raw: Vec<Vec<(usize, f64)>>) -> SparseSystem {
    let entries = raw
        .into_iter()
        .take(rows)
        .chain(std::iter::repeat(Vec::new()))
        .take(rows)
        .map(|row| {
            let mut folded: Vec<(usize, f64)> = Vec::new();
            for (c, v) in row {
                let col = c % cols;
                match folded.binary_search_by_key(&col, |&(c, _)| c) {
                    Ok(at) => folded[at].1 += v,
                    Err(at) => folded.insert(at, (col, v)),
                }
            }
            folded
        })
        .collect();
    SparseSystem {
        rows,
        cols,
        entries,
    }
}

fn raw_entries() -> impl Strategy<Value = Vec<Vec<(usize, f64)>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..64, -4.0f64..4.0), 0..5),
        8,
    )
}

fn dense_of(system: &SparseSystem) -> Matrix {
    let mut m = Matrix::zeros(system.rows, system.cols);
    for (r, row) in system.entries.iter().enumerate() {
        for &(c, v) in row {
            m.add_to(r, c, v);
        }
    }
    m
}

fn patterns_of(system: &SparseSystem) -> Vec<Vec<usize>> {
    system
        .entries
        .iter()
        .map(|row| row.iter().map(|&(c, _)| c).collect())
        .collect()
}

proptest! {
    #[test]
    fn csr_mat_vec_matches_dense(
        rows in 1usize..8,
        cols in 1usize..8,
        raw in raw_entries(),
        x in proptest::collection::vec(-3.0f64..3.0, 8),
    ) {
        let system = build_system(rows, cols, raw);
        let triplets: Vec<(usize, usize, f64)> = system
            .entries
            .iter()
            .enumerate()
            .flat_map(|(r, row)| row.iter().map(move |&(c, v)| (r, c, v)))
            .collect();
        let csr = CsrMatrix::from_triplets(system.rows, system.cols, triplets);
        let dense = dense_of(&system);
        let x = &x[..system.cols];
        let sparse_result = csr.mul_vec(x);
        let dense_result = dense.mul_vec(&Vector::from_slice(x));
        for r in 0..system.rows {
            prop_assert!((sparse_result[r] - dense_result[r]).abs() < 1e-9);
        }
    }

    #[test]
    fn jtj_accumulation_matches_dense_normal_matrix(
        rows in 1usize..8,
        cols in 1usize..8,
        raw in raw_entries(),
    ) {
        let system = build_system(rows, cols, raw);
        let pattern = JtjPattern::new(system.cols, patterns_of(&system));
        let mut values = pattern.values_buffer();
        let mut scratch = JtjScratch::default();
        for (r, row) in system.entries.iter().enumerate() {
            pattern.accumulate_row(r, row, &mut values, &mut scratch);
        }
        let dense = dense_of(&system);
        let jtj = &dense.transpose() * &dense;
        let sparse_jtj = pattern.to_dense(&values);
        for i in 0..system.cols {
            for j in 0..system.cols {
                prop_assert!(
                    (sparse_jtj.get(i, j) - jtj.get(i, j)).abs() < 1e-9,
                    "JtJ mismatch at ({}, {}): {} vs {}",
                    i, j, sparse_jtj.get(i, j), jtj.get(i, j)
                );
            }
        }
    }

    #[test]
    fn sparse_ldlt_factor_solve_matches_dense_solve(
        rows in 1usize..8,
        cols in 1usize..8,
        raw in raw_entries(),
        b in proptest::collection::vec(-3.0f64..3.0, 8),
        damping in 0.01f64..2.0,
    ) {
        let system = build_system(rows, cols, raw);
        let n = system.cols;
        let pattern = JtjPattern::new(n, patterns_of(&system));
        let mut values = pattern.values_buffer();
        let mut scratch = JtjScratch::default();
        for (r, row) in system.entries.iter().enumerate() {
            pattern.accumulate_row(r, row, &mut values, &mut scratch);
        }
        let (row_ptr, col_idx) = pattern.pattern();
        let symbolic = SymbolicLdl::analyze(n, row_ptr, col_idx);
        let mut numeric = symbolic.numeric();
        // JᵀJ + damping·I is positive definite for any J, so the
        // factorization must succeed.
        let diag_add = vec![damping; n];
        prop_assert!(symbolic.factor(&values, &diag_add, &mut numeric));
        let mut x: Vec<f64> = b[..n].to_vec();
        symbolic.solve(&mut numeric, &mut x);

        let mut dense = pattern.to_dense(&values);
        for i in 0..n {
            dense.add_to(i, i, damping);
        }
        let oracle = dense.solve(&Vector::from_slice(&b[..n])).expect("PD system");
        for i in 0..n {
            prop_assert!(
                (x[i] - oracle[i]).abs() < 1e-6 * (1.0 + oracle[i].abs()),
                "solve mismatch at {}: {} vs {}", i, x[i], oracle[i]
            );
        }
    }

    #[test]
    fn symbolic_analysis_is_sane_for_arbitrary_patterns(
        rows in 1usize..8,
        cols in 1usize..8,
        raw in raw_entries(),
    ) {
        let system = build_system(rows, cols, raw);
        let n = system.cols;
        let pattern = JtjPattern::new(n, patterns_of(&system));
        let (row_ptr, col_idx) = pattern.pattern();
        let symbolic = SymbolicLdl::analyze(n, row_ptr, col_idx);
        prop_assert!(symbolic.nnz_factor() >= n);
        prop_assert!(symbolic.nnz_factor() <= n * (n + 1) / 2);
        let mut perm = symbolic.permutation().to_vec();
        perm.sort_unstable();
        prop_assert_eq!(perm, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_jtj_merge_matches_dense_and_is_chunk_order_invariant(
        rows in 1usize..8,
        cols in 1usize..8,
        raw in raw_entries(),
        chunks in 1usize..5,
    ) {
        let system = build_system(rows, cols, raw);
        let pattern = JtjPattern::new(system.cols, patterns_of(&system));
        let mut scratch = JtjScratch::default();
        // Fixed chunk boundaries over the row range (never a function of the
        // worker count).
        let chunk_size = system.rows.div_ceil(chunks);
        let ranges: Vec<std::ops::Range<usize>> = (0..chunks)
            .map(|c| (c * chunk_size).min(system.rows)..((c + 1) * chunk_size).min(system.rows))
            .collect();
        let fill = |range: &std::ops::Range<usize>| {
            let mut partial = pattern.values_buffer();
            let mut scratch = JtjScratch::default();
            for r in range.clone() {
                pattern.accumulate_row(r, &system.entries[r], &mut partial, &mut scratch);
            }
            partial
        };
        // "Thread schedule A": fill chunks first-to-last; "schedule B":
        // last-to-first. The merge itself always runs in chunk-index order.
        let partials_fwd: Vec<Vec<f64>> = ranges.iter().map(&fill).collect();
        let mut partials_rev: Vec<Vec<f64>> = ranges.iter().rev().map(&fill).collect();
        partials_rev.reverse();
        let mut merged_fwd = pattern.values_buffer();
        let mut merged_rev = pattern.values_buffer();
        for c in 0..chunks {
            pattern.merge_partial(&mut merged_fwd, &partials_fwd[c]);
            pattern.merge_partial(&mut merged_rev, &partials_rev[c]);
        }
        // Bitwise invariance across fill orders: the worker count never
        // shows in the output.
        prop_assert_eq!(
            merged_fwd.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            merged_rev.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // And the merged accumulation is still the normal matrix.
        let mut serial = pattern.values_buffer();
        for (r, row) in system.entries.iter().enumerate() {
            pattern.accumulate_row(r, row, &mut serial, &mut scratch);
        }
        for (m, s) in merged_fwd.iter().zip(&serial) {
            prop_assert!((m - s).abs() < 1e-9);
        }
    }

    #[test]
    fn subtree_parallel_factor_is_bitwise_equal_to_serial(
        raw in proptest::collection::vec(
            proptest::collection::vec((0usize..96, -4.0f64..4.0), 0..5),
            48,
        ),
        damping in 0.01f64..2.0,
        threads in 2usize..9,
    ) {
        // A 96-variable system: big enough to clear factor_parallel's
        // small-matrix fallback and produce a real subtree schedule.
        let n = 96;
        let system = build_system(48, n, raw);
        let pattern = JtjPattern::new(n, patterns_of(&system));
        let mut values = pattern.values_buffer();
        let mut scratch = JtjScratch::default();
        for (r, row) in system.entries.iter().enumerate() {
            pattern.accumulate_row(r, row, &mut values, &mut scratch);
        }
        let (row_ptr, col_idx) = pattern.pattern();
        let symbolic = SymbolicLdl::analyze(n, row_ptr, col_idx);
        let diag_add = vec![damping; n];
        let mut serial = symbolic.numeric();
        prop_assert!(symbolic.factor(&values, &diag_add, &mut serial));
        let mut parallel = symbolic.numeric();
        prop_assert!(symbolic.factor_parallel(&values, &diag_add, &mut parallel, threads));
        // Bitwise: every pivot and factor entry, not just "close".
        prop_assert_eq!(
            serial.pivots().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.pivots().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            serial.factor_values().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            parallel.factor_values().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        // And the parallel factor solves against the dense oracle.
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut x = b.clone();
        symbolic.solve(&mut parallel, &mut x);
        let mut dense = pattern.to_dense(&values);
        for i in 0..n {
            dense.add_to(i, i, damping);
        }
        let oracle = dense.solve(&Vector::from_slice(&b)).expect("PD system");
        for i in 0..n {
            prop_assert!(
                (x[i] - oracle[i]).abs() < 1e-6 * (1.0 + oracle[i].abs()),
                "solve mismatch at {}: {} vs {}", i, x[i], oracle[i]
            );
        }
    }

    #[test]
    fn dense_into_buffer_variants_match_the_allocating_forms(
        rows in 1usize..8,
        cols in 1usize..8,
        raw in raw_entries(),
        x in proptest::collection::vec(-3.0f64..3.0, 8),
    ) {
        let system = build_system(rows, cols, raw);
        let dense = dense_of(&system);
        let mut transposed = Matrix::zeros(system.cols, system.rows);
        dense.transpose_into(&mut transposed);
        assert_eq!(transposed, dense.transpose());
        let mut product = Matrix::zeros(system.cols, system.cols);
        transposed.mul_into(&dense, &mut product);
        assert_eq!(product, &transposed * &dense);
        let v = Vector::from_slice(&x[..system.cols]);
        let mut out = Vector::zeros(system.rows);
        dense.mul_vec_into(&v, &mut out);
        assert_eq!(out, dense.mul_vec(&v));
    }
}
