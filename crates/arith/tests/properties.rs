//! Property-based tests for the arithmetic substrate.

use polyinv_arith::{Matrix, Rational, Vector};
use proptest::prelude::*;

fn small_rational() -> impl Strategy<Value = Rational> {
    (-200i128..200, 1i128..40).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #[test]
    fn addition_is_commutative(a in small_rational(), b in small_rational()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn addition_is_associative(a in small_rational(), b in small_rational(), c in small_rational()) {
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_distributes_over_addition(
        a in small_rational(), b in small_rational(), c in small_rational()
    ) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn additive_inverse(a in small_rational()) {
        prop_assert_eq!(a + (-a), Rational::zero());
    }

    #[test]
    fn multiplicative_inverse(a in small_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a * a.recip(), Rational::one());
    }

    #[test]
    fn ordering_is_consistent_with_f64(a in small_rational(), b in small_rational()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64() + 1e-9);
        }
    }

    #[test]
    fn display_round_trip(a in small_rational()) {
        let text = a.to_string();
        let parsed: Rational = text.parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn pow_matches_repeated_multiplication(a in small_rational(), e in 0u32..5) {
        let mut expected = Rational::one();
        for _ in 0..e {
            expected *= a;
        }
        prop_assert_eq!(a.pow(e), expected);
    }

    #[test]
    fn floor_is_a_lower_bound(a in small_rational()) {
        let fl = a.floor();
        prop_assert!(Rational::from_int(fl as i64) <= a);
        prop_assert!(a < Rational::from_int(fl as i64 + 1));
    }
}

fn small_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-5.0f64..5.0, n * n).prop_map(move |values| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, values[i * n + j]);
            }
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn psd_projection_is_psd(m in small_matrix(4)) {
        let mut sym = m.clone();
        sym.symmetrize();
        let projected = sym.project_psd();
        prop_assert!(projected.min_eigenvalue() >= -1e-7);
    }

    #[test]
    fn psd_projection_is_idempotent(m in small_matrix(3)) {
        let mut sym = m;
        sym.symmetrize();
        let once = sym.project_psd();
        let twice = once.project_psd();
        prop_assert!((&once - &twice).frobenius_norm() < 1e-6);
    }

    #[test]
    fn eigendecomposition_reconstructs_matrix(m in small_matrix(4)) {
        let mut sym = m;
        sym.symmetrize();
        let (eigenvalues, vectors) = sym.symmetric_eigen();
        // Reconstruct V diag(λ) Vᵀ.
        let n = sym.rows();
        let mut reconstructed = Matrix::zeros(n, n);
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    reconstructed.add_to(i, j, eigenvalues[k] * vectors.get(i, k) * vectors.get(j, k));
                }
            }
        }
        prop_assert!((&reconstructed - &sym).frobenius_norm() < 1e-6);
    }

    #[test]
    fn gaussian_solve_satisfies_system(m in small_matrix(4), rhs in prop::collection::vec(-5.0f64..5.0, 4)) {
        let b = Vector::from_slice(&rhs);
        if let Some(x) = m.solve(&b) {
            let residual = m.mul_vec(&x);
            for i in 0..4 {
                prop_assert!((residual[i] - b[i]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gram_matrices_are_psd(m in small_matrix(4)) {
        // AᵀA is always PSD.
        let gram = &m.transpose() * &m;
        prop_assert!(gram.min_eigenvalue() >= -1e-7);
        prop_assert!(gram.ldlt_psd(1e-6).is_some());
    }
}
