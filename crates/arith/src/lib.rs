//! Exact rational arithmetic and dense linear algebra.
//!
//! This crate provides the numeric substrate used throughout the `polyinv`
//! workspace:
//!
//! * [`Rational`] — arbitrary-precision-free, `i128`-backed normalized
//!   rationals with checked arithmetic, used for all *symbolic* computation
//!   (polynomial coefficients, constraint generation) where exactness
//!   matters.
//! * [`Matrix`] and [`Vector`] — dense, row-major `f64` linear algebra with
//!   LU solves, Cholesky and LDLᵀ factorizations, the Jacobi eigenvalue
//!   algorithm for symmetric matrices, and projection onto the positive
//!   semidefinite cone. These are the building blocks of the sum-of-squares
//!   (Gram matrix) machinery in `polyinv-qcqp`, and the oracle the sparse
//!   routines are property-tested against.
//! * [`sparse`] — the sparse substrate of the Step-4 solve path:
//!   [`CsrMatrix`], the symbolic normal matrix [`JtjPattern`] (JᵀJ
//!   accumulated directly from sparse Jacobian rows) and the sparse LDLᵀ
//!   factorization [`SymbolicLdl`] with a fill-reducing minimum-degree
//!   ordering whose symbolic analysis is computed once and reused across
//!   solver iterations.
//!
//! # Example
//!
//! ```
//! use polyinv_arith::{Rational, Matrix};
//!
//! let half = Rational::new(1, 2);
//! assert_eq!(half + half, Rational::one());
//!
//! let m = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
//! let chol = m.cholesky().expect("positive definite");
//! let rebuilt = &chol * &chol.transpose();
//! assert!((rebuilt.get(0, 0) - 2.0).abs() < 1e-12);
//! ```

pub mod linalg;
pub mod rational;
pub mod sparse;

pub use linalg::{Matrix, Vector};
pub use rational::{ParseRationalError, Rational, RationalError};
pub use sparse::{CsrMatrix, JtjPattern, JtjScratch, LdlNumeric, SymbolicLdl};
