//! Sparse `f64` linear algebra for the Step-4 solve path.
//!
//! The quadratic systems produced by the Putinar reduction are huge but
//! extremely sparse: on the Table 2/3 rows each residual touches only a
//! handful of the thousands of unknowns, so the Jacobian of the
//! least-squares reformulation is >99% zeros and its normal matrix `JᵀJ`
//! inherits that sparsity. This module provides the sparse substrate: the
//! Levenberg–Marquardt back-end runs on [`JtjPattern`] + [`SymbolicLdl`],
//! and [`CsrMatrix`] is the general-purpose building block for sparse
//! consumers that want an explicit matrix (it is not on the LM hot path):
//!
//! * [`CsrMatrix`] — a compressed-sparse-row matrix built from (sorted)
//!   triplets, with allocation-free mat-vec;
//! * [`JtjPattern`] — the *symbolic* normal matrix: given the fixed sparsity
//!   pattern of the Jacobian rows (which the `Problem` determines once), it
//!   precomputes the pattern of `JᵀJ` plus, per Jacobian row, the flat list
//!   of value positions its outer product scatters into. Accumulating `JᵀJ`
//!   then consumes sparse rows directly — neither `J` nor `Jᵀ` is ever
//!   materialized, densely or otherwise;
//! * [`SymbolicLdl`] / [`LdlNumeric`] — a sparse LDLᵀ factorization with a
//!   fill-reducing minimum-degree ordering. The ordering, elimination tree
//!   and column counts are computed **once** per pattern ([`SymbolicLdl::
//!   analyze`]); every LM iteration then only runs the numeric factorization
//!   and the triangular solves on preallocated buffers.
//!
//! Everything is deterministic: the ordering breaks ties by index, and the
//! numeric phases perform the same operations in the same order for a fixed
//! pattern. The dense [`Matrix`](crate::Matrix) routines remain the oracle
//! the property tests pin this module against.

use crate::linalg::Matrix;

/// Sentinel for "no parent" in the elimination tree.
const NONE: usize = usize::MAX;

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets `(row, col, value)`. Triplets may
    /// arrive in any order; duplicates are summed.
    ///
    /// # Panics
    ///
    /// Panics if a triplet lies outside the `rows × cols` shape.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets.into_iter().collect();
        for &(r, c, _) in &sorted {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) outside shape");
        }
        sorted.sort_by_key(|&(r, c, _)| (r, c));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut previous = None;
        for (r, c, v) in sorted {
            if previous == Some((r, c)) {
                // Same (row, col) as the previous triplet: merge.
                *values.last_mut().unwrap() += v;
            } else {
                col_idx.push(c);
                values.push(v);
                previous = Some((r, c));
            }
            row_ptr[r + 1] = col_idx.len();
        }
        // Rows without entries inherit the running offset.
        for r in 1..=rows {
            if row_ptr[r] < row_ptr[r - 1] {
                row_ptr[r] = row_ptr[r - 1];
            }
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The column indices and values of one row.
    pub fn row(&self, row: usize) -> (&[usize], &[f64]) {
        let span = self.row_ptr[row]..self.row_ptr[row + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Matrix–vector product into a fresh vector.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut out);
        out
    }

    /// Matrix–vector product into a caller-supplied buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x` or `out` have the wrong dimension.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "dimension mismatch in sparse mat-vec");
        assert_eq!(out.len(), self.rows, "output dimension mismatch");
        for r in 0..self.rows {
            let mut acc = 0.0;
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[p] * x[self.col_idx[p]];
            }
            out[r] = acc;
        }
    }

    /// Densifies the matrix (test oracle).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                m.add_to(r, self.col_idx[p], self.values[p]);
            }
        }
        m
    }
}

/// Flat index of the unordered pair `(a, b)` with `a ≤ b` in a triangular
/// enumeration.
#[inline]
fn tri_index(a: usize, b: usize) -> usize {
    debug_assert!(a <= b);
    b * (b + 1) / 2 + a
}

/// The symbolic normal matrix `JᵀJ` of a Jacobian with fixed row sparsity.
///
/// Built once from the per-row variable patterns (a superset of the columns
/// each Jacobian row can touch), it stores the **lower triangle** of `JᵀJ`
/// in CSR (row `j` holds columns `i ≤ j`, sorted) — which is exactly the
/// upper triangle in column-major order, the layout the LDLᵀ factorization
/// consumes — plus, for every Jacobian row, the flat list of value positions
/// its outer product scatters into. Accumulating `JᵀJ` at a new point is
/// then a pure scatter over a values buffer: no dense `J`, no dense `Jᵀ`,
/// no index searches in the hot loop.
#[derive(Debug, Clone)]
pub struct JtjPattern {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    diag_pos: Vec<usize>,
    /// Per Jacobian row: the sorted variable pattern.
    row_vars: Vec<Vec<usize>>,
    /// Per Jacobian row: positions of all `(a ≤ b)` pattern pairs in the
    /// values buffer, triangular-indexed by local pattern indices.
    pair_pos: Vec<Vec<u32>>,
    jacobian_nnz: usize,
}

/// Per-call scratch for [`JtjPattern::accumulate_row`]: the row's entries
/// mapped to local pattern indices.
#[derive(Debug, Clone, Default)]
pub struct JtjScratch {
    local: Vec<(u32, f64)>,
}

impl JtjPattern {
    /// Analyzes the pattern: `n` variables, one sorted variable list per
    /// Jacobian row.
    ///
    /// # Panics
    ///
    /// Panics if a pattern mentions a variable `≥ n` or is not strictly
    /// sorted.
    pub fn new(n: usize, rows: Vec<Vec<usize>>) -> Self {
        let mut jacobian_nnz = 0;
        for vars in &rows {
            jacobian_nnz += vars.len();
            for pair in vars.windows(2) {
                assert!(pair[0] < pair[1], "row patterns must be strictly sorted");
            }
            if let Some(&last) = vars.last() {
                assert!(last < n, "row pattern mentions variable {last} >= {n}");
            }
        }
        // Union of all (min, max) pairs, plus the full diagonal (damping is
        // added to every diagonal entry, touched or not).
        let mut pairs: Vec<(usize, usize)> = (0..n).map(|j| (j, j)).collect();
        for vars in &rows {
            for (k, &a) in vars.iter().enumerate() {
                for &b in &vars[k..] {
                    pairs.push((b, a)); // stored at (row = max, col = min)
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx = Vec::with_capacity(pairs.len());
        for &(r, c) in &pairs {
            col_idx.push(c);
            row_ptr[r + 1] += 1;
        }
        for r in 0..n {
            row_ptr[r + 1] += row_ptr[r];
        }
        let find = |r: usize, c: usize| -> usize {
            let span = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            row_ptr[r] + span.binary_search(&c).expect("pair in pattern")
        };
        let diag_pos: Vec<usize> = (0..n).map(|j| find(j, j)).collect();
        let pair_pos: Vec<Vec<u32>> = rows
            .iter()
            .map(|vars| {
                let p = vars.len();
                let mut positions = vec![0u32; p * (p + 1) / 2];
                for ib in 0..p {
                    for ia in 0..=ib {
                        let pos = find(vars[ib], vars[ia]);
                        positions[tri_index(ia, ib)] =
                            u32::try_from(pos).expect("pattern fits u32");
                    }
                }
                positions
            })
            .collect();
        JtjPattern {
            n,
            row_ptr,
            col_idx,
            diag_pos,
            row_vars: rows,
            pair_pos,
            jacobian_nnz,
        }
    }

    /// The matrix dimension.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Stored entries of the lower triangle (diagonal included).
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Total entries of the Jacobian row patterns (the `nnz(J)` statistic).
    pub fn jacobian_nnz(&self) -> usize {
        self.jacobian_nnz
    }

    /// The lower-triangle CSR pattern (row pointers, column indices).
    pub fn pattern(&self) -> (&[usize], &[usize]) {
        (&self.row_ptr, &self.col_idx)
    }

    /// Position of each diagonal entry in a values buffer.
    pub fn diag_positions(&self) -> &[usize] {
        &self.diag_pos
    }

    /// A zeroed values buffer of the right size.
    pub fn values_buffer(&self) -> Vec<f64> {
        vec![0.0; self.nnz()]
    }

    /// Scatters the outer product of one Jacobian row into `values`
    /// (`values[pos(i, j)] += rowᵢ · rowⱼ`). The entries must be a subset of
    /// the row's declared pattern, sorted by column.
    pub fn accumulate_row(
        &self,
        row: usize,
        entries: &[(usize, f64)],
        values: &mut [f64],
        scratch: &mut JtjScratch,
    ) {
        let vars = &self.row_vars[row];
        let positions = &self.pair_pos[row];
        scratch.local.clear();
        for &(col, value) in entries {
            let local = vars
                .binary_search(&col)
                .expect("row entry inside the declared pattern");
            scratch.local.push((local as u32, value));
        }
        for (k, &(ia, va)) in scratch.local.iter().enumerate() {
            for &(ib, vb) in &scratch.local[k..] {
                values[positions[tri_index(ia as usize, ib as usize)] as usize] += va * vb;
            }
        }
    }

    /// Folds one per-chunk partial accumulation into `target`
    /// (`target[p] += partial[p]`).
    ///
    /// The chunk-parallel evaluator accumulates disjoint row ranges into
    /// private buffers and merges them **in chunk-index order**: because
    /// chunk boundaries are fixed by the row count (never by the worker
    /// count), the floating-point sum sequence — and therefore every bit of
    /// the result — is identical whether the chunks were filled by 1 thread
    /// or 16.
    pub fn merge_partial(&self, target: &mut [f64], partial: &[f64]) {
        debug_assert_eq!(target.len(), self.nnz());
        debug_assert_eq!(partial.len(), self.nnz());
        for (t, p) in target.iter_mut().zip(partial) {
            *t += p;
        }
    }

    /// Densifies a values buffer into the full symmetric matrix (oracle).
    pub fn to_dense(&self, values: &[f64]) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for r in 0..self.n {
            for p in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[p];
                m.set(r, c, values[p]);
                m.set(c, r, values[p]);
            }
        }
        m
    }
}

/// A fill-reducing ordering of a symmetric pattern, computed by quotient-
/// graph minimum degree (approximate external degrees, deterministic
/// smallest-index tie break). Any permutation is *correct* — the ordering
/// only controls fill in the factor — so the property tests exercise the
/// factorization under whatever this produces.
fn minimum_degree(n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Vec<usize> {
    // Full (symmetric) adjacency, diagonal excluded.
    let mut adj_vars: Vec<Vec<usize>> = vec![Vec::new(); n];
    for r in 0..n {
        for p in row_ptr[r]..row_ptr[r + 1] {
            let c = col_idx[p];
            if c != r {
                adj_vars[r].push(c);
                adj_vars[c].push(r);
            }
        }
    }
    for list in &mut adj_vars {
        list.sort_unstable();
        list.dedup();
    }
    let mut adj_elems: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elements: Vec<Vec<usize>> = Vec::new();
    let mut elem_alive: Vec<bool> = Vec::new();
    let mut degree: Vec<usize> = adj_vars.iter().map(Vec::len).collect();
    let mut eliminated = vec![false; n];
    let mut perm = Vec::with_capacity(n);
    let mut in_front = vec![false; n];

    for _ in 0..n {
        // Deterministic pick: smallest approximate degree, then smallest
        // index.
        let mut pivot = NONE;
        for v in 0..n {
            if !eliminated[v] && (pivot == NONE || degree[v] < degree[pivot]) {
                pivot = v;
            }
        }
        eliminated[pivot] = true;
        perm.push(pivot);

        // The pivot's elimination front: its live variable neighbours plus
        // the variables of its adjacent elements.
        let mut front: Vec<usize> = Vec::new();
        for &v in &adj_vars[pivot] {
            if !eliminated[v] && !in_front[v] {
                in_front[v] = true;
                front.push(v);
            }
        }
        for &e in &adj_elems[pivot] {
            if elem_alive[e] {
                for &v in &elements[e] {
                    if !eliminated[v] && !in_front[v] {
                        in_front[v] = true;
                        front.push(v);
                    }
                }
            }
        }
        front.sort_unstable();
        for &v in &front {
            in_front[v] = false;
        }
        // Absorb the pivot's elements into the new one and free their
        // storage.
        for &e in &adj_elems[pivot] {
            if elem_alive[e] {
                elem_alive[e] = false;
                elements[e] = Vec::new();
            }
        }
        let eid = elements.len();
        elements.push(front.clone());
        elem_alive.push(true);

        // Update the front variables: drop edges now covered by the new
        // element, attach the element, refresh approximate degrees.
        for &v in &front {
            let f = &front;
            adj_vars[v].retain(|&u| !eliminated[u] && f.binary_search(&u).is_err());
            adj_elems[v].retain(|&e| elem_alive[e]);
            adj_elems[v].push(eid);
            let mut d = adj_vars[v].len();
            for &e in &adj_elems[v] {
                d += elements[e].len().saturating_sub(1);
            }
            degree[v] = d;
        }
        adj_vars[pivot] = Vec::new();
        adj_elems[pivot] = Vec::new();
    }
    perm
}

/// The symbolic phase of a sparse LDLᵀ factorization: fill-reducing
/// permutation, permuted pattern with value-position links, elimination tree
/// and per-column factor counts. Computed **once** per pattern and reused by
/// every numeric factorization (only the matrix *values* change between LM
/// iterations).
#[derive(Debug, Clone)]
pub struct SymbolicLdl {
    n: usize,
    /// `perm[new] = old`.
    perm: Vec<usize>,
    /// Permuted upper triangle in column-major order: column `k` holds the
    /// rows `i < k` (new indices, unsorted) and, in parallel, the position
    /// of the corresponding entry in the caller's values buffer.
    a_col_ptr: Vec<usize>,
    a_row: Vec<usize>,
    a_val_pos: Vec<usize>,
    /// Position of the diagonal entry of each permuted column in the
    /// caller's values buffer.
    a_diag_pos: Vec<usize>,
    /// Elimination-tree parent (or `NONE`).
    parent: Vec<usize>,
    /// Column pointers of the factor `L` (strictly-lower CSC).
    l_col_ptr: Vec<usize>,
}

/// Preallocated numeric buffers of a sparse LDLᵀ: the factor itself plus the
/// working arrays of the up-looking factorization and the solves. One of
/// these per concurrent solver; the shared [`SymbolicLdl`] stays immutable.
#[derive(Debug, Clone)]
pub struct LdlNumeric {
    l_row: Vec<usize>,
    l_values: Vec<f64>,
    d: Vec<f64>,
    y: Vec<f64>,
    pattern: Vec<usize>,
    flag: Vec<usize>,
    next_slot: Vec<usize>,
    work: Vec<f64>,
}

impl LdlNumeric {
    /// The pivots `D` of the last successful factorization (test oracle for
    /// the bitwise serial/parallel equivalence).
    pub fn pivots(&self) -> &[f64] {
        &self.d
    }

    /// The strictly-lower factor values of the last successful factorization
    /// (test oracle for the bitwise serial/parallel equivalence).
    pub fn factor_values(&self) -> &[f64] {
        &self.l_values
    }
}

/// Raw views into an [`LdlNumeric`]'s buffers, shared across the subtree
/// workers of [`SymbolicLdl::factor_parallel`]. Columns of disjoint
/// elimination-tree subtrees touch disjoint indices of every one of these
/// arrays, which is what makes the aliasing sound.
struct ColumnBuffers {
    y: *mut f64,
    flag: *mut usize,
    next_slot: *mut usize,
    d: *mut f64,
    l_row: *mut usize,
    l_values: *mut f64,
}

// SAFETY: the pointers are only dereferenced under the subtree-disjointness
// protocol documented on `factor_column`. This is the workspace's one
// audited unsafe island: the deny(unsafe_code) default stays in force
// everywhere else.
#[allow(unsafe_code)]
unsafe impl Sync for ColumnBuffers {}

impl ColumnBuffers {
    fn from_numeric(num: &mut LdlNumeric) -> Self {
        ColumnBuffers {
            y: num.y.as_mut_ptr(),
            flag: num.flag.as_mut_ptr(),
            next_slot: num.next_slot.as_mut_ptr(),
            d: num.d.as_mut_ptr(),
            l_row: num.l_row.as_mut_ptr(),
            l_values: num.l_values.as_mut_ptr(),
        }
    }
}

/// The column partition [`SymbolicLdl::subtree_schedule`] hands to the
/// parallel factorization: independent subtrees (safe to factor
/// concurrently) plus the serial top-of-tree columns.
#[derive(Debug, Clone)]
pub struct SubtreeSchedule {
    subtrees: Vec<Vec<usize>>,
    top: Vec<usize>,
}

impl SubtreeSchedule {
    /// The independent subtrees, each listing its columns in ascending
    /// order.
    pub fn subtrees(&self) -> &[Vec<usize>] {
        &self.subtrees
    }

    /// The serial top-of-tree columns, ascending.
    pub fn top(&self) -> &[usize] {
        &self.top
    }
}

impl SymbolicLdl {
    /// Analyzes a symmetric pattern given as its **lower triangle in CSR**
    /// (row `j` holds the sorted columns `i ≤ j`, diagonal present in every
    /// row): computes the minimum-degree permutation, the permuted pattern
    /// and the elimination tree with its column counts.
    ///
    /// # Panics
    ///
    /// Panics if a diagonal entry is missing or the pattern is not lower
    /// triangular.
    pub fn analyze(n: usize, row_ptr: &[usize], col_idx: &[usize]) -> Self {
        let perm = minimum_degree(n, row_ptr, col_idx);
        let mut inv_perm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            inv_perm[old] = new;
        }

        // Permuted upper columns: entry (old r, old c ≤ r) lands in column
        // max(inv r, inv c) at row min(inv r, inv c).
        let mut a_col_ptr = vec![0usize; n + 1];
        let mut a_diag_pos = vec![NONE; n];
        for r in 0..n {
            for p in row_ptr[r]..row_ptr[r + 1] {
                let c = col_idx[p];
                assert!(c <= r, "pattern must be lower triangular");
                if c == r {
                    a_diag_pos[inv_perm[r]] = p;
                } else {
                    a_col_ptr[inv_perm[r].max(inv_perm[c]) + 1] += 1;
                }
            }
        }
        for (k, &pos) in a_diag_pos.iter().enumerate() {
            assert!(pos != NONE, "missing diagonal entry in column {k}");
        }
        for k in 0..n {
            a_col_ptr[k + 1] += a_col_ptr[k];
        }
        let nnz_off = a_col_ptr[n];
        let mut a_row = vec![0usize; nnz_off];
        let mut a_val_pos = vec![0usize; nnz_off];
        let mut cursor = a_col_ptr.clone();
        for r in 0..n {
            for p in row_ptr[r]..row_ptr[r + 1] {
                let c = col_idx[p];
                if c != r {
                    let (i, k) = {
                        let (a, b) = (inv_perm[r], inv_perm[c]);
                        (a.min(b), a.max(b))
                    };
                    a_row[cursor[k]] = i;
                    a_val_pos[cursor[k]] = p;
                    cursor[k] += 1;
                }
            }
        }

        // Elimination tree and column counts (Davis, `ldl_symbolic`).
        let mut parent = vec![NONE; n];
        let mut flag = vec![NONE; n];
        let mut counts = vec![0usize; n];
        for k in 0..n {
            flag[k] = k;
            for p in a_col_ptr[k]..a_col_ptr[k + 1] {
                let mut j = a_row[p];
                while flag[j] != k {
                    if parent[j] == NONE {
                        parent[j] = k;
                    }
                    counts[j] += 1;
                    flag[j] = k;
                    j = parent[j];
                }
            }
        }
        let mut l_col_ptr = vec![0usize; n + 1];
        for k in 0..n {
            l_col_ptr[k + 1] = l_col_ptr[k] + counts[k];
        }
        SymbolicLdl {
            n,
            perm,
            a_col_ptr,
            a_row,
            a_val_pos,
            a_diag_pos,
            parent,
            l_col_ptr,
        }
    }

    /// The matrix dimension.
    pub fn dimension(&self) -> usize {
        self.n
    }

    /// Entries of the factor `L` including the (unit) diagonal — the
    /// `nnz(L)` statistic.
    pub fn nnz_factor(&self) -> usize {
        self.l_col_ptr[self.n] + self.n
    }

    /// The fill-reducing permutation (`perm[new] = old`).
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// Allocates the numeric buffers matching this symbolic analysis.
    pub fn numeric(&self) -> LdlNumeric {
        let nnz = self.l_col_ptr[self.n];
        LdlNumeric {
            l_row: vec![0; nnz],
            l_values: vec![0.0; nnz],
            d: vec![0.0; self.n],
            y: vec![0.0; self.n],
            pattern: vec![0; self.n],
            flag: vec![NONE; self.n],
            next_slot: vec![0; self.n],
            work: vec![0.0; self.n],
        }
    }

    /// Numeric up-looking LDLᵀ of `A + diag(diag_add)`, where `values` is
    /// the buffer the lower-triangle pattern of [`SymbolicLdl::analyze`]
    /// indexes into (e.g. a [`JtjPattern`] accumulation) and `diag_add` is
    /// the per-variable damping. Returns `false` when a pivot is not
    /// strictly positive (the matrix is not numerically positive definite at
    /// this damping) — the factor is then unusable and the caller should
    /// increase the damping.
    #[allow(unsafe_code)]
    pub fn factor(&self, values: &[f64], diag_add: &[f64], num: &mut LdlNumeric) -> bool {
        let n = self.n;
        num.next_slot.copy_from_slice(&self.l_col_ptr[..n]);
        let buffers = ColumnBuffers::from_numeric(num);
        let pattern = num.pattern.as_mut_ptr();
        for k in 0..n {
            // SAFETY: exclusive `&mut num` — no other access is live.
            if !unsafe { self.factor_column(k, values, diag_add, &buffers, pattern) } {
                return false;
            }
        }
        true
    }

    /// One column of the up-looking factorization, operating through raw
    /// pointers so independent elimination-tree subtrees can run on worker
    /// threads over the *same* numeric buffers.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no concurrent `factor_column` call
    /// touches an overlapping index set. Column `k` reads and writes only
    /// `y`/`flag`/`next_slot`/`d` at `k` and its elimination-tree
    /// descendants, and the `l_row`/`l_values` spans of those descendant
    /// columns — so columns in **disjoint subtrees** never alias (the basis
    /// of [`factor_parallel`](Self::factor_parallel)). `pattern` is a
    /// caller-private stack of length ≥ `n`.
    #[allow(unsafe_code)]
    unsafe fn factor_column(
        &self,
        k: usize,
        values: &[f64],
        diag_add: &[f64],
        buf: &ColumnBuffers,
        pattern: *mut usize,
    ) -> bool {
        let n = self.n;
        // Pattern of row k of L: nodes reachable from the column's
        // entries through the elimination tree, in topological order.
        let mut top = n;
        *buf.flag.add(k) = k;
        *buf.y.add(k) = 0.0;
        for p in self.a_col_ptr[k]..self.a_col_ptr[k + 1] {
            let i = self.a_row[p];
            *buf.y.add(i) += values[self.a_val_pos[p]];
            let mut len = 0;
            let mut j = i;
            while *buf.flag.add(j) != k {
                *pattern.add(len) = j;
                len += 1;
                *buf.flag.add(j) = k;
                j = self.parent[j];
            }
            while len > 0 {
                len -= 1;
                top -= 1;
                *pattern.add(top) = *pattern.add(len);
            }
        }
        let mut dk = values[self.a_diag_pos[k]] + diag_add[self.perm[k]];
        for t in top..n {
            let j = *pattern.add(t);
            let yj = *buf.y.add(j);
            *buf.y.add(j) = 0.0;
            let slot = *buf.next_slot.add(j);
            for p in self.l_col_ptr[j]..slot {
                *buf.y.add(*buf.l_row.add(p)) -= *buf.l_values.add(p) * yj;
            }
            let dj = *buf.d.add(j);
            let lkj = yj / dj;
            dk -= lkj * yj;
            *buf.l_row.add(slot) = k;
            *buf.l_values.add(slot) = lkj;
            *buf.next_slot.add(j) = slot + 1;
        }
        // A NaN pivot fails both comparisons, so non-finite values are
        // rejected along with non-positive ones.
        if dk <= 0.0 || !dk.is_finite() {
            return false;
        }
        *buf.d.add(k) = dk;
        true
    }

    /// Partitions the columns for parallel factorization: maximal
    /// elimination-tree subtrees small enough to balance across `threads`
    /// workers, plus the serial top-of-tree remainder.
    ///
    /// Columns inside a subtree stay in ascending order and the top columns
    /// run last, also ascending — exactly the visit order of the serial
    /// factorization, so the arithmetic (and the factor's bit pattern) is
    /// unchanged no matter how subtrees are spread over workers.
    pub fn subtree_schedule(&self, threads: usize) -> SubtreeSchedule {
        let n = self.n;
        // Subtree sizes: children precede parents (parent[k] > k), so one
        // ascending pass suffices.
        let mut size = vec![1usize; n];
        for k in 0..n {
            if self.parent[k] != NONE {
                size[self.parent[k]] += size[k];
            }
        }
        // A column is "top" when its subtree is too big to hand to one
        // worker. Subtree size is monotone up the tree, so the top set is
        // upward-closed and everything below it splits into independent
        // subtrees.
        let cutoff = (n / threads.max(1).saturating_mul(4)).max(32);
        let is_top: Vec<bool> = size.iter().map(|&s| s > cutoff).collect();
        // Assign each non-top column to the root of its maximal non-top
        // subtree. Parents have larger indices, so a descending pass sees
        // the parent's assignment first.
        let mut root = vec![NONE; n];
        for k in (0..n).rev() {
            if is_top[k] {
                continue;
            }
            let p = self.parent[k];
            root[k] = if p == NONE || is_top[p] { k } else { root[p] };
        }
        let mut subtrees_by_root: Vec<Vec<usize>> = Vec::new();
        let mut root_slot = vec![NONE; n];
        let mut top = Vec::new();
        for k in 0..n {
            if is_top[k] {
                top.push(k);
            } else {
                let r = root[k];
                if root_slot[r] == NONE {
                    root_slot[r] = subtrees_by_root.len();
                    subtrees_by_root.push(Vec::new());
                }
                subtrees_by_root[root_slot[r]].push(k);
            }
        }
        SubtreeSchedule {
            subtrees: subtrees_by_root,
            top,
        }
    }

    /// Like [`factor`](Self::factor), but with the independent
    /// elimination-tree subtrees of [`subtree_schedule`](Self::
    /// subtree_schedule) factored on up to `threads` worker threads before
    /// the serial top-of-tree pass. Falls back to the serial path when the
    /// budget or the schedule offers no parallelism.
    ///
    /// The result — factor values, pivots, and the success verdict — is
    /// bitwise identical to the serial factorization: every column performs
    /// the same operations in the same order, only *which thread* runs a
    /// subtree changes.
    #[allow(unsafe_code)]
    pub fn factor_parallel(
        &self,
        values: &[f64],
        diag_add: &[f64],
        num: &mut LdlNumeric,
        threads: usize,
    ) -> bool {
        if threads <= 1 || self.n < 64 {
            return self.factor(values, diag_add, num);
        }
        let schedule = self.subtree_schedule(threads);
        if schedule.subtrees.len() <= 1 {
            return self.factor(values, diag_add, num);
        }
        let n = self.n;
        num.next_slot.copy_from_slice(&self.l_col_ptr[..n]);
        let buffers = ColumnBuffers::from_numeric(num);
        let ok = std::sync::atomic::AtomicBool::new(true);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let workers = threads.min(schedule.subtrees.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                let buffers = &buffers;
                let schedule = &schedule;
                let ok = &ok;
                let next = &next;
                scope.spawn(move || {
                    // Worker-private pattern stack; every other buffer is
                    // shared but touched at subtree-disjoint indices.
                    let mut pattern = vec![0usize; n];
                    loop {
                        let s = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if s >= schedule.subtrees.len()
                            || !ok.load(std::sync::atomic::Ordering::Relaxed)
                        {
                            return;
                        }
                        for &k in &schedule.subtrees[s] {
                            // SAFETY: columns of distinct subtrees touch
                            // disjoint indices (see `factor_column`), and a
                            // subtree is processed by exactly one worker.
                            let fine = unsafe {
                                self.factor_column(
                                    k,
                                    values,
                                    diag_add,
                                    buffers,
                                    pattern.as_mut_ptr(),
                                )
                            };
                            if !fine {
                                ok.store(false, std::sync::atomic::Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                });
            }
        });
        if !ok.load(std::sync::atomic::Ordering::Relaxed) {
            return false;
        }
        // Top-of-tree columns depend on multiple subtrees: serial, ascending.
        let pattern = num.pattern.as_mut_ptr();
        for &k in &schedule.top {
            // SAFETY: the worker scope has joined; access is exclusive again.
            if !unsafe { self.factor_column(k, values, diag_add, &buffers, pattern) } {
                return false;
            }
        }
        true
    }

    /// Solves `(A + diag) x = b` in place using the factor produced by the
    /// last successful [`factor`](Self::factor) call on `num`.
    pub fn solve(&self, num: &mut LdlNumeric, b: &mut [f64]) {
        let n = self.n;
        for k in 0..n {
            num.work[k] = b[self.perm[k]];
        }
        for k in 0..n {
            let xk = num.work[k];
            if xk != 0.0 {
                for p in self.l_col_ptr[k]..self.l_col_ptr[k + 1] {
                    num.work[num.l_row[p]] -= num.l_values[p] * xk;
                }
            }
        }
        for k in 0..n {
            num.work[k] /= num.d[k];
        }
        for k in (0..n).rev() {
            let mut xk = num.work[k];
            for p in self.l_col_ptr[k]..self.l_col_ptr[k + 1] {
                xk -= num.l_values[p] * num.work[num.l_row[p]];
            }
            num.work[k] = xk;
        }
        for k in 0..n {
            b[self.perm[k]] = num.work[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::Vector;

    #[test]
    fn csr_from_triplets_merges_duplicates_and_multiplies() {
        let m = CsrMatrix::from_triplets(
            3,
            4,
            vec![(2, 1, 1.0), (0, 0, 2.0), (0, 0, 0.5), (1, 3, -1.0)],
        );
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0), (&[0usize][..], &[2.5][..]));
        let y = m.mul_vec(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![2.5, -4.0, 2.0]);
        let dense = m.to_dense();
        assert_eq!(dense.get(0, 0), 2.5);
        assert_eq!(dense.get(1, 3), -1.0);
    }

    #[test]
    fn jtj_accumulation_matches_the_dense_normal_matrix() {
        // Rows of a 4-column Jacobian with fixed sparsity.
        let patterns = vec![vec![0, 2], vec![1, 2, 3], vec![0], vec![1, 3]];
        let pattern = JtjPattern::new(4, patterns.clone());
        assert_eq!(pattern.jacobian_nnz(), 8);
        let rows: Vec<Vec<(usize, f64)>> = vec![
            vec![(0, 1.0), (2, -2.0)],
            vec![(1, 3.0), (2, 0.5), (3, 1.0)],
            vec![(0, -1.0)],
            vec![(1, 2.0)], // subset of the declared pattern
        ];
        let mut values = pattern.values_buffer();
        let mut scratch = JtjScratch::default();
        for (k, entries) in rows.iter().enumerate() {
            pattern.accumulate_row(k, entries, &mut values, &mut scratch);
        }
        // Dense oracle.
        let mut j = Matrix::zeros(4, 4);
        for (r, entries) in rows.iter().enumerate() {
            for &(c, v) in entries {
                j.set(r, c, v);
            }
        }
        let jtj = &j.transpose() * &j;
        let dense = pattern.to_dense(&values);
        for r in 0..4 {
            for c in 0..4 {
                assert!(
                    (dense.get(r, c) - jtj.get(r, c)).abs() < 1e-12,
                    "mismatch at ({r}, {c})"
                );
            }
        }
    }

    #[test]
    fn minimum_degree_produces_a_permutation() {
        // Arrowhead pattern: dense first row/column.
        let patterns: Vec<Vec<usize>> = (1..6).map(|i| vec![0, i]).collect();
        let jtj = JtjPattern::new(6, patterns);
        let (row_ptr, col_idx) = jtj.pattern();
        let perm = minimum_degree(6, row_ptr, col_idx);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..6).collect::<Vec<_>>());
        // The hub (variable 0) must not be eliminated early: doing so first
        // fills the remaining graph in completely. Once only one spoke is
        // left the hub ties with it, so it may come second-to-last.
        assert!(
            perm[4] == 0 || perm[5] == 0,
            "hub eliminated early: {perm:?}"
        );
    }

    #[test]
    fn sparse_ldlt_solves_against_the_dense_oracle() {
        // J with a mix of coupled and independent columns.
        let patterns = vec![
            vec![0, 1],
            vec![1, 2],
            vec![2, 3],
            vec![3, 4],
            vec![0, 4],
            vec![2],
        ];
        let jtj = JtjPattern::new(5, patterns.clone());
        let rows: Vec<Vec<(usize, f64)>> = vec![
            vec![(0, 2.0), (1, -1.0)],
            vec![(1, 1.5), (2, 0.5)],
            vec![(2, -1.0), (3, 2.0)],
            vec![(3, 1.0), (4, 1.0)],
            vec![(0, 0.5), (4, -2.0)],
            vec![(2, 3.0)],
        ];
        let mut values = jtj.values_buffer();
        let mut scratch = JtjScratch::default();
        for (k, entries) in rows.iter().enumerate() {
            jtj.accumulate_row(k, entries, &mut values, &mut scratch);
        }
        let (row_ptr, col_idx) = jtj.pattern();
        let symbolic = SymbolicLdl::analyze(5, row_ptr, col_idx);
        assert!(symbolic.nnz_factor() >= 5);
        let mut numeric = symbolic.numeric();
        let damping = vec![0.1; 5];
        assert!(symbolic.factor(&values, &damping, &mut numeric));
        let mut x = vec![1.0, -2.0, 3.0, 0.5, 4.0];
        symbolic.solve(&mut numeric, &mut x);
        // Dense oracle: (JᵀJ + 0.1 I) x = b.
        let mut dense = jtj.to_dense(&values);
        for i in 0..5 {
            dense.add_to(i, i, 0.1);
        }
        let oracle = dense
            .solve(&Vector::from_slice(&[1.0, -2.0, 3.0, 0.5, 4.0]))
            .expect("positive definite");
        for i in 0..5 {
            assert!(
                (x[i] - oracle[i]).abs() < 1e-9,
                "solution mismatch at {i}: {} vs {}",
                x[i],
                oracle[i]
            );
        }
    }

    #[test]
    fn factorization_rejects_indefinite_matrices() {
        // A = [[0, 1], [1, 0]] is indefinite: with no damping the first
        // pivot is zero.
        let jtj = JtjPattern::new(2, vec![vec![0, 1]]);
        let mut values = jtj.values_buffer();
        let mut scratch = JtjScratch::default();
        // Outer product [1, 1] gives [[1,1],[1,1]] (singular): pivot two is
        // exactly zero.
        jtj.accumulate_row(0, &[(0, 1.0), (1, 1.0)], &mut values, &mut scratch);
        let (row_ptr, col_idx) = jtj.pattern();
        let symbolic = SymbolicLdl::analyze(2, row_ptr, col_idx);
        let mut numeric = symbolic.numeric();
        assert!(!symbolic.factor(&values, &[0.0, 0.0], &mut numeric));
        // Damping restores positive definiteness.
        assert!(symbolic.factor(&values, &[1e-3, 1e-3], &mut numeric));
    }

    #[test]
    fn the_subtree_schedule_partitions_every_column_exactly_once() {
        // Four 25-column chains coupled only through their last columns: the
        // elimination tree is four branches meeting below a small top — the
        // shape subtree parallelism exploits. (A single band would give a
        // path etree and, correctly, a single subtree.)
        let mut patterns: Vec<Vec<usize>> = Vec::new();
        for g in 0..4 {
            for i in 0..24 {
                patterns.push(vec![25 * g + i, 25 * g + i + 1]);
            }
        }
        patterns.push(vec![24, 49, 74, 99]);
        let jtj = JtjPattern::new(100, patterns);
        let (row_ptr, col_idx) = jtj.pattern();
        let symbolic = SymbolicLdl::analyze(100, row_ptr, col_idx);
        let schedule = symbolic.subtree_schedule(4);
        let mut seen = vec![0usize; 100];
        for subtree in schedule.subtrees() {
            assert!(!subtree.is_empty());
            for w in subtree.windows(2) {
                assert!(w[0] < w[1], "subtree columns must ascend");
            }
            for &k in subtree {
                seen[k] += 1;
            }
        }
        for w in schedule.top().windows(2) {
            assert!(w[0] < w[1], "top columns must ascend");
        }
        for &k in schedule.top() {
            seen[k] += 1;
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "every column appears exactly once: {seen:?}"
        );
        assert!(
            schedule.subtrees().len() > 1,
            "a banded etree must split into multiple subtrees"
        );
    }

    #[test]
    fn parallel_factorization_rejects_what_the_serial_one_rejects() {
        // 80 decoupled 2×2 indefinite blocks: the failing pivot sits inside
        // a worker subtree, not the serial top.
        let patterns: Vec<Vec<usize>> = (0..40).map(|i| vec![2 * i, 2 * i + 1]).collect();
        let jtj = JtjPattern::new(80, patterns);
        let mut values = jtj.values_buffer();
        let mut scratch = JtjScratch::default();
        for i in 0..40 {
            // Outer product [1, 1]: singular, so the second pivot of each
            // block is exactly zero without damping.
            jtj.accumulate_row(i, &[(2 * i, 1.0), (2 * i + 1, 1.0)], &mut values, &mut scratch);
        }
        let (row_ptr, col_idx) = jtj.pattern();
        let symbolic = SymbolicLdl::analyze(80, row_ptr, col_idx);
        let mut numeric = symbolic.numeric();
        let zero = vec![0.0; 80];
        assert!(!symbolic.factor_parallel(&values, &zero, &mut numeric, 4));
        // Damping restores positive definiteness — including after the
        // failed attempt (no stale state may leak between factor calls).
        let damp = vec![1e-3; 80];
        assert!(symbolic.factor_parallel(&values, &damp, &mut numeric, 4));
        let mut serial = symbolic.numeric();
        assert!(symbolic.factor(&values, &damp, &mut serial));
        assert_eq!(serial.pivots(), numeric.pivots());
        assert_eq!(serial.factor_values(), numeric.factor_values());
    }

    #[test]
    fn repeated_factorizations_reuse_the_symbolic_analysis() {
        let jtj = JtjPattern::new(3, vec![vec![0, 1], vec![1, 2]]);
        let (row_ptr, col_idx) = jtj.pattern();
        let symbolic = SymbolicLdl::analyze(3, row_ptr, col_idx);
        let mut numeric = symbolic.numeric();
        let mut scratch = JtjScratch::default();
        for scale in [1.0, 2.0, 0.5] {
            let mut values = jtj.values_buffer();
            jtj.accumulate_row(0, &[(0, scale), (1, -scale)], &mut values, &mut scratch);
            jtj.accumulate_row(1, &[(1, scale), (2, scale)], &mut values, &mut scratch);
            assert!(symbolic.factor(&values, &[0.5, 0.5, 0.5], &mut numeric));
            let mut x = vec![1.0, 1.0, 1.0];
            symbolic.solve(&mut numeric, &mut x);
            let mut dense = jtj.to_dense(&values);
            for i in 0..3 {
                dense.add_to(i, i, 0.5);
            }
            let oracle = dense
                .solve(&Vector::from_slice(&[1.0, 1.0, 1.0]))
                .expect("positive definite");
            for i in 0..3 {
                assert!((x[i] - oracle[i]).abs() < 1e-9);
            }
        }
    }
}
