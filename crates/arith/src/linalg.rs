//! Dense `f64` linear algebra used by the SOS / Gram-matrix machinery.
//!
//! The quadratic systems produced by the Putinar translation contain
//! sum-of-squares constraints of the form `h = yᵀ Q y` with `Q ⪰ 0`
//! (Theorem 3.4 of the paper). The QCQP substrate manipulates those Gram
//! matrices directly, which requires symmetric eigendecomposition (for
//! projection onto the PSD cone), Cholesky/LDLᵀ factorizations (for
//! extracting sum-of-squares certificates, Theorem 3.5) and linear solves.
//!
//! Everything here is dense and written for clarity over raw speed; the
//! matrices involved are small (tens to a few hundreds of rows).

use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// A dense column vector of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector from a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        Vector {
            data: values.to_vec(),
        }
    }

    /// The dimension of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has dimension zero.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the underlying storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying storage.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// The dot product with another vector.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dimension mismatch in dot product");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Returns `self + scale * other`.
    pub fn axpy(&self, scale: f64, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "dimension mismatch in axpy");
        Vector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + scale * b)
                .collect(),
        }
    }

    /// Scales the vector by a constant.
    pub fn scale(&self, factor: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|x| x * factor).collect(),
        }
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, index: usize) -> &f64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, index: usize) -> &mut f64 {
        &mut self.data[index]
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

/// A dense row-major matrix of `f64` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for row in rows {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: nrows,
            cols: ncols,
            data,
        }
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Reads the entry at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Writes the entry at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to the entry at `(row, col)`.
    pub fn add_to(&mut self, row: usize, col: usize, value: f64) {
        self.data[row * self.cols + col] += value;
    }

    /// The transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut t);
        t
    }

    /// Writes the transpose into a caller-supplied matrix (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have the transposed shape.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(out.rows, self.cols, "transpose_into shape mismatch");
        assert_eq!(out.cols, self.rows, "transpose_into shape mismatch");
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.set(j, i, self.get(i, j));
            }
        }
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are incompatible.
    pub fn mul_vec(&self, v: &Vector) -> Vector {
        let mut result = Vector::zeros(self.rows);
        self.mul_vec_into(v, &mut result);
        result
    }

    /// Matrix–vector product into a caller-supplied vector (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are incompatible.
    pub fn mul_vec_into(&self, v: &Vector, out: &mut Vector) {
        assert_eq!(
            self.cols,
            v.len(),
            "dimension mismatch in matrix-vector product"
        );
        assert_eq!(self.rows, out.len(), "output dimension mismatch");
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self.get(i, j) * v[j];
            }
            out[i] = acc;
        }
    }

    /// Matrix product into a caller-supplied matrix (no allocation). `out`
    /// is overwritten, not accumulated into.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are incompatible or `out` aliases an input
    /// shape-wise incorrectly.
    pub fn mul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        assert_eq!(out.rows, self.rows, "output shape mismatch");
        assert_eq!(out.cols, rhs.cols, "output shape mismatch");
        out.data.fill(0.0);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out.add_to(i, j, aik * rhs.get(k, j));
                }
            }
        }
    }

    /// Returns `true` if the matrix is (numerically) symmetric.
    pub fn is_symmetric(&self, tolerance: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self.get(i, j) - self.get(j, i)).abs() > tolerance {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrizes the matrix in place: `A ← (A + Aᵀ)/2`.
    pub fn symmetrize(&mut self) {
        assert_eq!(
            self.rows, self.cols,
            "only square matrices can be symmetrized"
        );
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self.get(i, j) + self.get(j, i));
                self.set(i, j, avg);
                self.set(j, i, avg);
            }
        }
    }

    /// Cholesky factorization `A = L·Lᵀ` for a symmetric positive definite
    /// matrix. Returns `None` if the matrix is not (numerically) positive
    /// definite.
    pub fn cholesky(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self.get(i, j);
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(l)
    }

    /// LDLᵀ factorization with tolerance for positive *semi*-definite
    /// matrices: `A ≈ L·diag(d)·Lᵀ` with unit lower-triangular `L`.
    ///
    /// Returns `None` if a pivot is more negative than `-tolerance`
    /// (i.e. the matrix is not PSD up to the tolerance).
    pub fn ldlt_psd(&self, tolerance: f64) -> Option<(Matrix, Vec<f64>)> {
        assert_eq!(self.rows, self.cols, "ldlt requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::identity(n);
        let mut d = vec![0.0; n];
        for j in 0..n {
            let mut dj = self.get(j, j);
            for k in 0..j {
                dj -= l.get(j, k) * l.get(j, k) * d[k];
            }
            if dj < -tolerance {
                return None;
            }
            let dj = dj.max(0.0);
            d[j] = dj;
            for i in (j + 1)..n {
                let mut v = self.get(i, j);
                for k in 0..j {
                    v -= l.get(i, k) * l.get(j, k) * d[k];
                }
                if dj <= tolerance {
                    // A zero pivot of a PSD matrix forces the whole column of
                    // the Schur complement to be zero; otherwise the matrix
                    // has a negative eigenvalue.
                    if v.abs() > tolerance.sqrt() {
                        return None;
                    }
                    l.set(i, j, 0.0);
                } else {
                    l.set(i, j, v / dj);
                }
            }
        }
        Some((l, d))
    }

    /// Solves `A·x = b` by Gaussian elimination with partial pivoting.
    ///
    /// Returns `None` if the matrix is singular to working precision.
    pub fn solve(&self, b: &Vector) -> Option<Vector> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(self.rows, b.len(), "dimension mismatch in solve");
        let n = self.rows;
        let mut a = self.clone();
        let mut x = b.clone();
        for col in 0..n {
            // Partial pivoting.
            let mut pivot_row = col;
            let mut pivot_val = a.get(col, col).abs();
            for row in (col + 1)..n {
                let v = a.get(row, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = a.get(col, j);
                    a.set(col, j, a.get(pivot_row, j));
                    a.set(pivot_row, j, tmp);
                }
                let tmp = x[col];
                x[col] = x[pivot_row];
                x[pivot_row] = tmp;
            }
            let pivot = a.get(col, col);
            for row in (col + 1)..n {
                let factor = a.get(row, col) / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    let v = a.get(row, j) - factor * a.get(col, j);
                    a.set(row, j, v);
                }
                x[row] -= factor * x[col];
            }
        }
        // Back substitution.
        let mut result = Vector::zeros(n);
        for row in (0..n).rev() {
            let mut acc = x[row];
            for j in (row + 1)..n {
                acc -= a.get(row, j) * result[j];
            }
            result[row] = acc / a.get(row, row);
        }
        Some(result)
    }

    /// The inverse of a square matrix computed by Gauss–Jordan elimination
    /// with partial pivoting, or `None` if the matrix is singular to working
    /// precision.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "inverse requires a square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            let mut pivot_row = col;
            let mut pivot_val = a.get(col, col).abs();
            for row in (col + 1)..n {
                let v = a.get(row, col).abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = a.get(col, j);
                    a.set(col, j, a.get(pivot_row, j));
                    a.set(pivot_row, j, tmp);
                    let tmp = inv.get(col, j);
                    inv.set(col, j, inv.get(pivot_row, j));
                    inv.set(pivot_row, j, tmp);
                }
            }
            let pivot = a.get(col, col);
            for j in 0..n {
                a.set(col, j, a.get(col, j) / pivot);
                inv.set(col, j, inv.get(col, j) / pivot);
            }
            for row in 0..n {
                if row == col {
                    continue;
                }
                let factor = a.get(row, col);
                if factor == 0.0 {
                    continue;
                }
                for j in 0..n {
                    a.set(row, j, a.get(row, j) - factor * a.get(col, j));
                    inv.set(row, j, inv.get(row, j) - factor * inv.get(col, j));
                }
            }
        }
        Some(inv)
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂` via the normal
    /// equations with Tikhonov damping `λ`.
    pub fn solve_least_squares(&self, b: &Vector, damping: f64) -> Option<Vector> {
        assert_eq!(self.rows, b.len(), "dimension mismatch in least squares");
        let at = self.transpose();
        let mut ata = &at * self;
        for i in 0..ata.rows() {
            ata.add_to(i, i, damping);
        }
        let atb = at.mul_vec(b);
        ata.solve(&atb)
    }

    /// Symmetric eigendecomposition via the cyclic Jacobi algorithm.
    ///
    /// Returns `(eigenvalues, eigenvectors)` where column `k` of the
    /// eigenvector matrix corresponds to `eigenvalues[k]`. The input must be
    /// symmetric.
    pub fn symmetric_eigen(&self) -> (Vec<f64>, Matrix) {
        assert_eq!(
            self.rows, self.cols,
            "eigendecomposition requires a square matrix"
        );
        let n = self.rows;
        let mut a = self.clone();
        a.symmetrize();
        let mut v = Matrix::identity(n);
        let max_sweeps = 100;
        for _ in 0..max_sweeps {
            let mut off_diag = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off_diag += a.get(i, j) * a.get(i, j);
                }
            }
            if off_diag.sqrt() < 1e-14 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a.get(p, q);
                    if apq.abs() < 1e-16 {
                        continue;
                    }
                    let app = a.get(p, p);
                    let aqq = a.get(q, q);
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply the rotation to A (both sides) and accumulate in V.
                    for k in 0..n {
                        let akp = a.get(k, p);
                        let akq = a.get(k, q);
                        a.set(k, p, c * akp - s * akq);
                        a.set(k, q, s * akp + c * akq);
                    }
                    for k in 0..n {
                        let apk = a.get(p, k);
                        let aqk = a.get(q, k);
                        a.set(p, k, c * apk - s * aqk);
                        a.set(q, k, s * apk + c * aqk);
                    }
                    for k in 0..n {
                        let vkp = v.get(k, p);
                        let vkq = v.get(k, q);
                        v.set(k, p, c * vkp - s * vkq);
                        v.set(k, q, s * vkp + c * vkq);
                    }
                }
            }
        }
        let eigenvalues = (0..n).map(|i| a.get(i, i)).collect();
        (eigenvalues, v)
    }

    /// Projects a symmetric matrix onto the cone of positive semidefinite
    /// matrices (in Frobenius norm) by clipping negative eigenvalues.
    pub fn project_psd(&self) -> Matrix {
        let (eigenvalues, vectors) = self.symmetric_eigen();
        let n = self.rows;
        let mut result = Matrix::zeros(n, n);
        for k in 0..n {
            let lambda = eigenvalues[k].max(0.0);
            if lambda == 0.0 {
                continue;
            }
            for i in 0..n {
                let vik = vectors.get(i, k);
                if vik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    result.add_to(i, j, lambda * vik * vectors.get(j, k));
                }
            }
        }
        result.symmetrize();
        result
    }

    /// The minimum eigenvalue of a symmetric matrix.
    pub fn min_eigenvalue(&self) -> f64 {
        let (eigenvalues, _) = self.symmetric_eigen();
        eigenvalues.iter().copied().fold(f64::INFINITY, f64::min)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        &mut self.data[row * self.cols + col]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "dimension mismatch in matrix addition");
        assert_eq!(self.cols, rhs.cols, "dimension mismatch in matrix addition");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "dimension mismatch in matrix subtraction"
        );
        assert_eq!(
            self.cols, rhs.cols,
            "dimension mismatch in matrix subtraction"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut result = Matrix::zeros(self.rows, rhs.cols);
        self.mul_into(rhs, &mut result);
        result
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, rhs: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * rhs).collect(),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self.get(i, j))?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn vector_basics() {
        let v = Vector::from_slice(&[3.0, 4.0]);
        assert_eq!(v.len(), 2);
        assert!(approx_eq(v.norm(), 5.0));
        let w = Vector::from_slice(&[1.0, 2.0]);
        assert!(approx_eq(v.dot(&w), 11.0));
        let sum = v.axpy(2.0, &w);
        assert_eq!(sum.as_slice(), &[5.0, 8.0]);
    }

    #[test]
    fn matrix_multiplication() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = &a * &b;
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn transpose_and_symmetry() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let at = a.transpose();
        assert_eq!(at.get(0, 1), 3.0);
        assert!(!a.is_symmetric(1e-12));
        let mut s = a.clone();
        s.symmetrize();
        assert!(s.is_symmetric(1e-12));
        assert!(approx_eq(s.get(0, 1), 2.5));
    }

    #[test]
    fn cholesky_reconstructs_spd_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]);
        let l = a.cholesky().expect("SPD");
        let reconstructed = &l * &l.transpose();
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(reconstructed.get(i, j), a.get(i, j)));
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(a.cholesky().is_none());
    }

    #[test]
    fn ldlt_handles_semidefinite_matrix() {
        // Rank-1 PSD matrix.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let (l, d) = a.ldlt_psd(1e-9).expect("PSD");
        assert!(d.iter().all(|&x| x >= 0.0));
        // Reconstruct.
        let mut diag = Matrix::zeros(2, 2);
        for i in 0..2 {
            diag.set(i, i, d[i]);
        }
        let reconstructed = &(&l * &diag) * &l.transpose();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(reconstructed.get(i, j), a.get(i, j)));
            }
        }
        let indefinite = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!(indefinite.ldlt_psd(1e-9).is_none());
    }

    #[test]
    fn solve_linear_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let b = Vector::from_slice(&[3.0, 5.0]);
        let x = a.solve(&b).expect("non-singular");
        assert!(approx_eq(x[0], 0.8));
        assert!(approx_eq(x[1], 1.4));
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(singular.solve(&b).is_none());
    }

    #[test]
    fn least_squares_solves_overdetermined_system() {
        // Fit y = 2x over three points with no noise.
        let a = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let b = Vector::from_slice(&[2.0, 4.0, 6.0]);
        let x = a.solve_least_squares(&b, 0.0).expect("solvable");
        assert!(approx_eq(x[0], 2.0));
    }

    #[test]
    fn jacobi_eigendecomposition() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (mut eigenvalues, vectors) = a.symmetric_eigen();
        eigenvalues.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert!(approx_eq(eigenvalues[0], 1.0));
        assert!(approx_eq(eigenvalues[1], 3.0));
        // Eigenvectors should be orthonormal.
        let vtv = &vectors.transpose() * &vectors;
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(vtv.get(i, j), expected));
            }
        }
    }

    #[test]
    fn psd_projection_clips_negative_eigenvalues() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let p = a.project_psd();
        assert!(p.min_eigenvalue() >= -1e-9);
        // Projection of a PSD matrix is (numerically) itself.
        let spd = Matrix::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]);
        let projected = spd.project_psd();
        assert!((&projected - &spd).frobenius_norm() < 1e-9);
    }

    #[test]
    fn min_eigenvalue_of_identity_is_one() {
        let eye = Matrix::identity(4);
        assert!(approx_eq(eye.min_eigenvalue(), 1.0));
    }
}
