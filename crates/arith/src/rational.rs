//! Normalized `i128`-backed rational numbers.
//!
//! All symbolic computation in the workspace (polynomial coefficients,
//! guards, pre/post-conditions, constraint generation) uses [`Rational`] so
//! that the reduction of Steps 1–3 of the paper is exact; only the numeric
//! QCQP back-end works in `f64`.
//!
//! The representation is always normalized: the denominator is strictly
//! positive and `gcd(|numer|, denom) == 1`. Arithmetic panics on overflow of
//! the 128-bit intermediate values, which never happens for the benchmark
//! programs shipped in this repository (their constants are tiny); the
//! checked entry points [`Rational::checked_add`] and friends are available
//! for callers that prefer graceful failure.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// Error produced by fallible [`Rational`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RationalError {
    /// A denominator of zero was supplied or produced.
    DivisionByZero,
    /// An intermediate value exceeded the `i128` range.
    Overflow,
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::DivisionByZero => write!(f, "division by zero"),
            RationalError::Overflow => write!(f, "arithmetic overflow in rational computation"),
        }
    }
}

impl std::error::Error for RationalError {}

/// Error produced when parsing a [`Rational`] from a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError {
    input: String,
}

impl ParseRationalError {
    fn new(input: &str) -> Self {
        Self {
            input: input.to_string(),
        }
    }
}

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal `{}`", self.input)
    }
}

impl std::error::Error for ParseRationalError {}

/// An exact rational number `numer / denom` with `denom > 0` and
/// `gcd(|numer|, denom) == 1`.
///
/// # Example
///
/// ```
/// use polyinv_arith::Rational;
///
/// let a = Rational::new(3, 4);
/// let b = Rational::new(1, 4);
/// assert_eq!(a + b, Rational::one());
/// assert_eq!((a - b).to_string(), "1/2");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rational {
    numer: i128,
    denom: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational number zero.
    pub fn zero() -> Self {
        Rational { numer: 0, denom: 1 }
    }

    /// The rational number one.
    pub fn one() -> Self {
        Rational { numer: 1, denom: 1 }
    }

    /// Creates a new rational `numer / denom`, normalizing the result.
    ///
    /// # Panics
    ///
    /// Panics if `denom == 0`.
    pub fn new(numer: i128, denom: i128) -> Self {
        Self::checked_new(numer, denom).expect("denominator must be non-zero")
    }

    /// Creates a new rational, returning an error instead of panicking on a
    /// zero denominator.
    pub fn checked_new(numer: i128, denom: i128) -> Result<Self, RationalError> {
        if denom == 0 {
            return Err(RationalError::DivisionByZero);
        }
        let sign = if denom < 0 { -1 } else { 1 };
        let g = gcd(numer, denom);
        if g == 0 {
            return Ok(Rational { numer: 0, denom: 1 });
        }
        Ok(Rational {
            numer: sign * numer / g,
            denom: sign * denom / g,
        })
    }

    /// Creates a rational from an integer.
    pub fn from_int(value: i64) -> Self {
        Rational {
            numer: value as i128,
            denom: 1,
        }
    }

    /// Approximates an `f64` by a rational with denominator at most `10^9`.
    ///
    /// Intended for turning solver output (which is numeric) back into
    /// presentable symbolic form. Non-finite inputs map to zero.
    pub fn approximate(value: f64) -> Self {
        if !value.is_finite() {
            return Rational::zero();
        }
        // Continued-fraction expansion with a bounded denominator.
        const MAX_DENOM: i128 = 1_000_000_000;
        let negative = value < 0.0;
        let mut x = value.abs();
        let (mut p0, mut q0, mut p1, mut q1) = (0i128, 1i128, 1i128, 0i128);
        for _ in 0..40 {
            let a = x.floor();
            if a > i64::MAX as f64 {
                break;
            }
            let a_int = a as i128;
            let p2 = match a_int.checked_mul(p1).and_then(|v| v.checked_add(p0)) {
                Some(v) => v,
                None => break,
            };
            let q2 = match a_int.checked_mul(q1).and_then(|v| v.checked_add(q0)) {
                Some(v) => v,
                None => break,
            };
            if q2 > MAX_DENOM {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-12 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return Rational::zero();
        }
        let r = Rational::new(p1, q1);
        if negative {
            -r
        } else {
            r
        }
    }

    /// The numerator of the normalized representation.
    pub fn numer(&self) -> i128 {
        self.numer
    }

    /// The (strictly positive) denominator of the normalized representation.
    pub fn denom(&self) -> i128 {
        self.denom
    }

    /// Returns `true` if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.numer == 0
    }

    /// Returns `true` if the value is exactly one.
    pub fn is_one(&self) -> bool {
        self.numer == 1 && self.denom == 1
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.numer > 0
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.numer < 0
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.denom == 1
    }

    /// The absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            numer: self.numer.abs(),
            denom: self.denom,
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        self.checked_recip().expect("cannot invert zero")
    }

    /// The multiplicative inverse, or an error if the value is zero.
    pub fn checked_recip(&self) -> Result<Self, RationalError> {
        Self::checked_new(self.denom, self.numer)
    }

    /// Converts to an `f64` approximation.
    pub fn to_f64(&self) -> f64 {
        self.numer as f64 / self.denom as f64
    }

    /// Checked addition.
    pub fn checked_add(&self, other: &Self) -> Result<Self, RationalError> {
        let g = gcd(self.denom, other.denom);
        let lhs_scale = other.denom / g;
        let rhs_scale = self.denom / g;
        let numer = self
            .numer
            .checked_mul(lhs_scale)
            .and_then(|a| {
                other
                    .numer
                    .checked_mul(rhs_scale)
                    .and_then(|b| a.checked_add(b))
            })
            .ok_or(RationalError::Overflow)?;
        let denom = self
            .denom
            .checked_mul(lhs_scale)
            .ok_or(RationalError::Overflow)?;
        Self::checked_new(numer, denom)
    }

    /// Checked subtraction.
    pub fn checked_sub(&self, other: &Self) -> Result<Self, RationalError> {
        self.checked_add(&(-*other))
    }

    /// Checked multiplication.
    pub fn checked_mul(&self, other: &Self) -> Result<Self, RationalError> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.numer, other.denom);
        let g2 = gcd(other.numer, self.denom);
        let n1 = self.numer / g1;
        let d2 = other.denom / g1;
        let n2 = other.numer / g2;
        let d1 = self.denom / g2;
        let numer = n1.checked_mul(n2).ok_or(RationalError::Overflow)?;
        let denom = d1.checked_mul(d2).ok_or(RationalError::Overflow)?;
        Self::checked_new(numer, denom)
    }

    /// Checked division.
    pub fn checked_div(&self, other: &Self) -> Result<Self, RationalError> {
        if other.is_zero() {
            return Err(RationalError::DivisionByZero);
        }
        self.checked_mul(&other.checked_recip()?)
    }

    /// Raises the rational to a non-negative integer power.
    pub fn pow(&self, exp: u32) -> Self {
        let mut result = Rational::one();
        let mut base = *self;
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result *= base;
            }
            base = base * base;
            e >>= 1;
        }
        result
    }

    /// Raises the rational to a non-negative integer power, returning an
    /// error instead of panicking on overflow (used by the interpreter's
    /// overflow-safe evaluation path).
    pub fn checked_pow(&self, exp: u32) -> Result<Self, RationalError> {
        let mut result = Rational::one();
        let mut base = *self;
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = result.checked_mul(&base)?;
            }
            e >>= 1;
            if e > 0 {
                base = base.checked_mul(&base)?;
            }
        }
        Ok(result)
    }

    /// The floor of the rational as an integer.
    pub fn floor(&self) -> i128 {
        if self.numer >= 0 {
            self.numer / self.denom
        } else {
            -((-self.numer + self.denom - 1) / self.denom)
        }
    }

    /// The minimum of two rationals.
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The maximum of two rationals.
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        self.numer == other.numer && self.denom == other.denom
    }
}

impl Eq for Rational {}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.numer.hash(state);
        self.denom.hash(state);
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // Compare a/b with c/d by comparing a*d with c*b (b, d > 0).
        // Use i128 widening carefully; values in this workspace stay small.
        let lhs = self.numer.checked_mul(other.denom);
        let rhs = other.numer.checked_mul(self.denom);
        match (lhs, rhs) {
            (Some(l), Some(r)) => l.cmp(&r),
            _ => self
                .to_f64()
                .partial_cmp(&other.to_f64())
                .unwrap_or(Ordering::Equal),
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.denom == 1 {
            write!(f, "{}", self.numer)
        } else {
            write!(f, "{}/{}", self.numer, self.denom)
        }
    }
}

impl From<i64> for Rational {
    fn from(value: i64) -> Self {
        Rational::from_int(value)
    }
}

impl From<i32> for Rational {
    fn from(value: i32) -> Self {
        Rational::from_int(value as i64)
    }
}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"3"`, `"-3/4"` or a decimal literal such as `"0.25"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let numer: i128 = n.trim().parse().map_err(|_| ParseRationalError::new(s))?;
            let denom: i128 = d.trim().parse().map_err(|_| ParseRationalError::new(s))?;
            return Rational::checked_new(numer, denom).map_err(|_| ParseRationalError::new(s));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: i128 = if int_part.is_empty() || int_part == "-" {
                0
            } else {
                int_part.parse().map_err(|_| ParseRationalError::new(s))?
            };
            if frac_part.is_empty() || !frac_part.chars().all(|c| c.is_ascii_digit()) {
                return Err(ParseRationalError::new(s));
            }
            let frac: i128 = frac_part.parse().map_err(|_| ParseRationalError::new(s))?;
            let scale = 10i128
                .checked_pow(frac_part.len() as u32)
                .ok_or_else(|| ParseRationalError::new(s))?;
            let frac_rat = Rational::new(frac, scale);
            let int_rat = Rational::new(int.abs(), 1);
            let magnitude = int_rat + frac_rat;
            return Ok(if negative || int < 0 {
                -magnitude
            } else {
                magnitude
            });
        }
        let numer: i128 = s.parse().map_err(|_| ParseRationalError::new(s))?;
        Ok(Rational::new(numer, 1))
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $checked:ident) => {
        impl $trait for Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs).expect("rational arithmetic overflow")
            }
        }

        impl $trait<&Rational> for Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$checked(rhs).expect("rational arithmetic overflow")
            }
        }

        impl $trait<Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: Rational) -> Rational {
                self.$checked(&rhs).expect("rational arithmetic overflow")
            }
        }

        impl $trait<&Rational> for &Rational {
            type Output = Rational;
            fn $method(self, rhs: &Rational) -> Rational {
                self.$checked(rhs).expect("rational arithmetic overflow")
            }
        }
    };
}

impl_binop!(Add, add, checked_add);
impl_binop!(Sub, sub, checked_sub);
impl_binop!(Mul, mul, checked_mul);
impl_binop!(Div, div, checked_div);

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            numer: -self.numer,
            denom: self.denom,
        }
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        -*self
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rational {
    fn div_assign(&mut self, rhs: Rational) {
        *self = *self / rhs;
    }
}

impl std::iter::Sum for Rational {
    fn sum<I: Iterator<Item = Rational>>(iter: I) -> Self {
        iter.fold(Rational::zero(), |acc, x| acc + x)
    }
}

impl std::iter::Product for Rational {
    fn product<I: Iterator<Item = Rational>>(iter: I) -> Self {
        iter.fold(Rational::one(), |acc, x| acc * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 7), Rational::zero());
    }

    #[test]
    fn zero_denominator_is_an_error() {
        assert_eq!(
            Rational::checked_new(1, 0),
            Err(RationalError::DivisionByZero)
        );
    }

    #[test]
    fn basic_arithmetic() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::new(2, 1));
    }

    #[test]
    fn negation_and_abs() {
        let a = Rational::new(-3, 4);
        assert_eq!(-a, Rational::new(3, 4));
        assert_eq!(a.abs(), Rational::new(3, 4));
        assert!(a.is_negative());
        assert!((-a).is_positive());
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::zero());
        assert_eq!(
            Rational::new(2, 6).cmp(&Rational::new(1, 3)),
            Ordering::Equal
        );
    }

    #[test]
    fn pow_and_floor() {
        assert_eq!(Rational::new(2, 3).pow(3), Rational::new(8, 27));
        assert_eq!(Rational::new(1, 2).pow(0), Rational::one());
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(6, 2).floor(), 3);
    }

    #[test]
    fn parsing() {
        assert_eq!("3".parse::<Rational>().unwrap(), Rational::from_int(3));
        assert_eq!("-3/4".parse::<Rational>().unwrap(), Rational::new(-3, 4));
        assert_eq!("0.25".parse::<Rational>().unwrap(), Rational::new(1, 4));
        assert_eq!("-0.5".parse::<Rational>().unwrap(), Rational::new(-1, 2));
        assert_eq!("1.5".parse::<Rational>().unwrap(), Rational::new(3, 2));
        assert!("abc".parse::<Rational>().is_err());
        assert!("1/0".parse::<Rational>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for r in [
            Rational::new(3, 7),
            Rational::from_int(-4),
            Rational::zero(),
            Rational::new(-22, 7),
        ] {
            let text = r.to_string();
            assert_eq!(text.parse::<Rational>().unwrap(), r);
        }
    }

    #[test]
    fn approximate_recovers_simple_fractions() {
        assert_eq!(Rational::approximate(0.5), Rational::new(1, 2));
        assert_eq!(Rational::approximate(-0.25), Rational::new(-1, 4));
        assert_eq!(Rational::approximate(3.0), Rational::from_int(3));
        let third = Rational::approximate(1.0 / 3.0);
        assert!((third.to_f64() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(Rational::approximate(f64::NAN), Rational::zero());
    }

    #[test]
    fn sums_and_products() {
        let values = [
            Rational::new(1, 2),
            Rational::new(1, 3),
            Rational::new(1, 6),
        ];
        let sum: Rational = values.iter().copied().sum();
        assert_eq!(sum, Rational::one());
        let product: Rational = values.iter().copied().product();
        assert_eq!(product, Rational::new(1, 36));
    }

    #[test]
    fn checked_overflow_is_detected() {
        let huge = Rational::new(i128::MAX / 2, 1);
        assert_eq!(huge.checked_mul(&huge), Err(RationalError::Overflow));
    }
}
