//! Quickstart: parse a program, run the reduction, and inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use polyinv::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small non-deterministic program in the paper's mini-language.
    let source = r#"
        double(n) {
            @pre(n >= 0);
            x := 0;
            i := 0;
            while i < n do
                if * then
                    x := x + 2
                else
                    x := x + 1
                fi;
                i := i + 1
            od;
            return x
        }
    "#;
    let program = parse_program(source)?;
    println!(
        "parsed `{}` with {} labels",
        program.main().name(),
        program.main().labels().len()
    );

    // Steps 1-3: build the quadratic system for degree-2 invariant templates.
    let pre = Precondition::from_program(&program);
    let options = SynthesisOptions::default();
    let generated = polyinv_constraints::generate(&program, &pre, &options);
    println!("generated quadratic system: {}", generated.system.summary());

    // Step 4 (weak synthesis): prove that the return value is at most 2n.
    let exit = program.main().exit_label();
    let (target, _) = parse_assertion(&program, "double", "2 * n_in + 1 - ret > 0")?;
    let synth = WeakSynthesis::with_options(SynthesisOptions {
        degree: 1,
        ..SynthesisOptions::default()
    });
    let outcome = synth.synthesize(&program, &pre, &[TargetAssertion::new(exit, target)]);
    println!(
        "weak synthesis: {:?} (|S| = {}, violation = {:.2e}, solve time = {:?})",
        outcome.status, outcome.system_size, outcome.violation, outcome.solve_time
    );
    if outcome.status == SynthesisStatus::Synthesized {
        println!(
            "synthesized inductive invariant:\n{}",
            outcome.invariant.render(&program)
        );
    }
    Ok(())
}
