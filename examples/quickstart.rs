//! Quickstart: drive the Engine API end-to-end — parse a program, inspect
//! the reduction, synthesize an invariant, and serialize the report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use polyinv_api::{Engine, ReportStatus, SynthesisRequest};

fn main() -> Result<(), polyinv_api::ApiError> {
    // A small non-deterministic program in the paper's mini-language.
    let source = r#"
        double(n) {
            @pre(n >= 0);
            x := 0;
            i := 0;
            while i < n do
                if * then
                    x := x + 2
                else
                    x := x + 1
                fi;
                i := i + 1
            od;
            return x
        }
    "#;
    let engine = Engine::new();
    let program = engine.parse_program(source)?;
    println!(
        "parsed `{}` with {} labels",
        program.main().name(),
        program.main().labels().len()
    );

    // Steps 1-3: build the quadratic system for degree-2 invariant
    // templates and report its size (|S|, the paper's Table 2/3 metric).
    let generated = engine.run(&SynthesisRequest::generate_only(source))?;
    println!(
        "generated quadratic system: |S| = {}, unknowns = {}",
        generated.system_size, generated.num_unknowns
    );

    // Step 4 (weak synthesis) on a bounded non-deterministic counter: the
    // local solver closes lower-bound targets of this shape in well under a
    // second. (Unbounded-loop targets like `ret <= 2n` for `double` need
    // the commercial interior-point solver the paper used.)
    let bounded = r#"
        gain(x) {
            @pre(x >= 0);
            while x <= 10 do
                if * then
                    x := x + 2
                else
                    x := x + 1
                fi
            od;
            return x
        }
    "#;
    let request = SynthesisRequest::weak(bounded)
        .with_degree(1)
        .with_target("x + 1 > 0");
    let report = engine.run(&request)?;
    println!(
        "weak synthesis: {} (|S| = {}, violation = {:.2e}, solve time = {:.2}s)",
        report.status,
        report.system_size,
        report.violation,
        report.stage_seconds("solve")
    );
    if report.status == ReportStatus::Synthesized {
        println!("synthesized inductive invariant:");
        for line in &report.invariants {
            println!("  {line}");
        }
    }

    // Every report round-trips as JSON (the CLI prints exactly this with
    // `polyinv synth <file> --target "..." --json`).
    println!("as JSON: {}", report.to_json_string());
    Ok(())
}
