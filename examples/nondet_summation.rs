//! The paper's running example (Figures 2 and 3, Appendix B.1): the
//! non-deterministic summation program.
//!
//! This example demonstrates the *checking* direction through the Engine:
//! a hand-written inductive strengthening is certified by searching for the
//! sum-of-squares certificate of every constraint pair (Lemma 3.6), and a
//! deliberately wrong assertion is both refuted by the checker and falsified
//! by the interpreter.
//!
//! ```text
//! cargo run --release --example nondet_summation
//! ```

use polyinv::prelude::{falsify, parse_assertion, InvariantMap, Precondition};
use polyinv_api::{Engine, ReportStatus, SynthesisRequest};
use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;

fn main() -> Result<(), polyinv_api::ApiError> {
    let engine = Engine::new();
    println!("{}", RUNNING_EXAMPLE_SOURCE.trim());
    println!();

    // The paper's goal (Example 1 / Appendix B.1): at the endpoint label,
    // ret_sum < 0.5·n̄² + 0.5·n̄ + 1.
    println!("target at the endpoint: 0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0");

    // A margin-aware inductive strengthening of the linear facts
    // (i ≥ 1, s ≥ 0, n ≥ 1) that every reachable state satisfies. Because
    // consecution constraints relax the antecedent to ≥ 0 but require the
    // consequent with a positivity witness, the constant terms stagger
    // along the control flow. Conjuncts attach to labels by index into the
    // main function's label list.
    let mut check = SynthesisRequest::check(RUNNING_EXAMPLE_SOURCE).with_target_at(0, "n > 0");
    for (index, (i_term, combined)) in [
        ("8*i - 7", "4*i + 4*s - 3"), // label 2
        ("4*i - 3", "4*i + 4*s + 1"), // label 3 (loop head)
        ("4*i - 2", "4*i + 4*s + 2"), // label 4 (if ⋆)
        ("4*i - 1", "4*i + 4*s + 3"), // label 5 (s := s + i)
        ("4*i - 1", "4*i + 4*s + 3"), // label 6 (skip)
        ("4*i - 0", "4*i + 4*s + 4"), // label 7 (i := i + 1)
        ("4*i - 2", "4*i + 4*s + 2"), // label 8 (return)
        ("4*i - 1", "4*i + 4*s + 3"), // label 9 (endpoint)
    ]
    .iter()
    .enumerate()
    {
        check = check
            .with_target_at(index + 1, format!("{i_term} > 0"))
            .with_target_at(index + 1, format!("{combined} > 0"));
    }
    let report = engine.run(&check)?;
    println!(
        "certificate check of the strengthening: {}/{} constraint pairs certified",
        report.pairs_certified, report.pairs_total
    );
    assert_eq!(report.status, ReportStatus::Certified);

    // Cross-check with the interpreter: no sampled valid run violates it.
    // (Falsification works on the parsed program, shared via the Engine's
    // cache.)
    let program = engine.parse_program(RUNNING_EXAMPLE_SOURCE)?;
    let pre = Precondition::from_program(&program);
    let labels = program.main().labels().to_vec();
    let mut invariant = InvariantMap::new();
    let parse = |text: &str| parse_assertion(&program, "sum", text).map(|(p, _)| p);
    invariant.add(labels[0], parse("n > 0")?);
    assert!(falsify(&program, &pre, &invariant, 200, 7).is_none());
    println!("falsification: no violation in 200 sampled runs");

    // A wrong assertion (s stays below 1) is rejected by both directions.
    let wrong = SynthesisRequest::check(RUNNING_EXAMPLE_SOURCE).with_target_at(7, "1 - s > 0");
    let report = engine.run(&wrong)?;
    let mut claimed = InvariantMap::new();
    claimed.add(labels[7], parse("1 - s > 0")?);
    let violation = falsify(&program, &pre, &claimed, 200, 7);
    println!(
        "wrong assertion: certified = {}, falsified = {}",
        report.status == ReportStatus::Certified,
        violation.is_some()
    );
    assert_eq!(report.status, ReportStatus::NotCertified);
    assert!(violation.is_some());
    Ok(())
}
