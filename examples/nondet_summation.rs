//! The paper's running example (Figures 2 and 3, Appendix B.1): the
//! non-deterministic summation program.
//!
//! This example demonstrates the *checking* direction of the pipeline:
//! a hand-written inductive strengthening is certified by searching for the
//! sum-of-squares certificate of every constraint pair (Lemma 3.6), and a
//! deliberately wrong assertion is both refuted by the checker and falsified
//! by the interpreter.
//!
//! ```text
//! cargo run --release --example nondet_summation
//! ```

use polyinv::prelude::*;
use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(RUNNING_EXAMPLE_SOURCE)?;
    let pre = Precondition::from_program(&program);
    println!("{}", RUNNING_EXAMPLE_SOURCE.trim());
    println!();

    // The paper's goal (Example 1 / Appendix B.1): at the endpoint label,
    // ret_sum < 0.5·n̄² + 0.5·n̄ + 1.
    let exit = program.main().exit_label();
    let (goal, _) = parse_assertion(&program, "sum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0")?;
    println!("target at {exit}: {} > 0", program.render_poly(&goal));

    // A margin-aware inductive strengthening of the linear facts
    // (i ≥ 1, s ≥ 0, n ≥ 1) that every reachable state satisfies.
    let labels = program.main().labels().to_vec();
    let parse = |text: &str| parse_assertion(&program, "sum", text).map(|(p, _)| p);
    let mut invariant = InvariantMap::new();
    invariant.add(labels[0], parse("n > 0")?);
    for (index, (i_term, combined)) in [
        ("8*i - 7", "4*i + 4*s - 3"),
        ("4*i - 3", "4*i + 4*s + 1"),
        ("4*i - 2", "4*i + 4*s + 2"),
        ("4*i - 1", "4*i + 4*s + 3"),
        ("4*i - 1", "4*i + 4*s + 3"),
        ("4*i - 0", "4*i + 4*s + 4"),
        ("4*i - 2", "4*i + 4*s + 2"),
        ("4*i - 1", "4*i + 4*s + 3"),
    ]
    .iter()
    .enumerate()
    {
        invariant.add(labels[index + 1], parse(&format!("{i_term} > 0"))?);
        invariant.add(labels[index + 1], parse(&format!("{combined} > 0"))?);
    }

    let report = check_inductive(
        &program,
        &pre,
        &invariant,
        &Postcondition::new(),
        &CheckOptions::default(),
    );
    println!(
        "certificate check of the strengthening: {}/{} constraint pairs certified",
        report.num_certified(),
        report.certificates.len()
    );
    assert!(report.all_certified());

    // Cross-check with the interpreter: no sampled valid run violates it.
    assert!(falsify(&program, &pre, &invariant, 200, 7).is_none());
    println!("falsification: no violation in 200 sampled runs");

    // A wrong assertion (s stays below 1) is rejected by both directions.
    let mut wrong = InvariantMap::new();
    wrong.add(labels[7], parse("1 - s > 0")?);
    let report = check_inductive(
        &program,
        &pre,
        &wrong,
        &Postcondition::new(),
        &CheckOptions::default(),
    );
    let violation = falsify(&program, &pre, &wrong, 200, 7);
    println!(
        "wrong assertion: certified = {}, falsified = {}",
        report.all_certified(),
        violation.is_some()
    );
    assert!(!report.all_certified());
    assert!(violation.is_some());
    Ok(())
}
