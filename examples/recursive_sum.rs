//! The recursive summation program of Figure 4: recursive invariant
//! generation with post-condition templates (Section 4 of the paper).
//!
//! ```text
//! cargo run --release --example recursive_sum
//! ```

use polyinv::prelude::*;
use polyinv::weak::{SynthesisStatus, TargetAssertion};
use polyinv_lang::program::RECURSIVE_EXAMPLE_SOURCE;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = parse_program(RECURSIVE_EXAMPLE_SOURCE)?;
    let pre = Precondition::from_program(&program);
    println!("{}", RECURSIVE_EXAMPLE_SOURCE.trim());
    println!();

    // Steps 1-3 of RecWeakInvSynth: note the post-condition template µ(rsum)
    // over {n̄, ret} (Example 11 of the paper).
    let options = SynthesisOptions::default();
    let generated = polyinv_constraints::generate(&program, &pre, &options);
    println!("recursive reduction: {}", generated.system.summary());
    let post_template = generated
        .templates
        .postcondition("rsum")
        .expect("recursive synthesis builds a post-condition template");
    println!(
        "post-condition template µ(rsum) ranges over {} monomials",
        post_template.basis.len()
    );

    // The paper's target: ret < 0.5·n̄² + 0.5·n̄ + 1 at the endpoint.
    let exit = program.main().exit_label();
    let (target, _) = parse_assertion(&program, "rsum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0")?;
    let synth = WeakSynthesis::with_options(options);
    let outcome = synth.synthesize(&program, &pre, &[TargetAssertion::new(exit, target)]);
    println!(
        "RecWeakInvSynth: {:?} (|S| = {}, unknowns = {}, violation = {:.2e}, {:?})",
        outcome.status,
        outcome.system_size,
        outcome.num_unknowns,
        outcome.violation,
        outcome.solve_time
    );
    match outcome.status {
        SynthesisStatus::Synthesized => {
            println!("synthesized post-condition(s):");
            for (function, atoms) in outcome.postconditions.iter() {
                for atom in atoms {
                    println!("  {}: {} > 0", function, program.render_poly(&atom.poly));
                }
            }
        }
        SynthesisStatus::Failed => {
            // The local solver cannot always close the full quadratic system
            // (the paper used a commercial interior-point solver); the
            // interpreter still confirms the target holds on sampled runs.
            let mut claimed = InvariantMap::new();
            let (goal, _) =
                parse_assertion(&program, "rsum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0")?;
            claimed.add(exit, goal);
            let counterexample = falsify(&program, &pre, &claimed, 300, 11);
            println!(
                "solver did not converge; falsification of the target over 300 runs: {}",
                if counterexample.is_none() {
                    "no counterexample (consistent with the paper's result)"
                } else {
                    "counterexample found"
                }
            );
        }
    }
    Ok(())
}
