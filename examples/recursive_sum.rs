//! The recursive summation program of Figure 4: recursive invariant
//! generation with post-condition templates (Section 4 of the paper),
//! through the Engine.
//!
//! ```text
//! cargo run --release --example recursive_sum            # generation + falsification
//! cargo run --release --example recursive_sum -- --solve # full Step-4 attempt (minutes)
//! ```

use polyinv::prelude::{falsify, parse_assertion, InvariantMap, Precondition};
use polyinv_api::{Engine, ReportStatus, SynthesisRequest};
use polyinv_lang::program::RECURSIVE_EXAMPLE_SOURCE;

const TARGET: &str = "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0";

fn main() -> Result<(), polyinv_api::ApiError> {
    let engine = Engine::new();
    println!("{}", RECURSIVE_EXAMPLE_SOURCE.trim());
    println!();

    // Steps 1-3 of RecWeakInvSynth: the recursive reduction instantiates a
    // post-condition template µ(rsum) over {n̄, ret} next to the per-label
    // invariant templates (Example 11 of the paper).
    let generated = engine.run(&SynthesisRequest::generate_only(RECURSIVE_EXAMPLE_SOURCE))?;
    println!(
        "recursive reduction: |S| = {}, unknowns = {}",
        generated.system_size, generated.num_unknowns
    );
    for note in &generated.diagnostics {
        println!("  {note}");
    }
    println!("paper target at the endpoint: {TARGET}");

    if std::env::args().any(|a| a == "--solve") {
        // Step 4: pin the target and hand the full quadratic system to the
        // local solver. This is the expensive path (the paper used a
        // commercial interior-point solver); expect minutes, and possibly a
        // `failed` report — the reproduce harness records the outcomes.
        let request = SynthesisRequest::weak(RECURSIVE_EXAMPLE_SOURCE).with_target(TARGET);
        let report = engine.run(&request)?;
        println!(
            "RecWeakInvSynth: {} (|S| = {}, unknowns = {}, violation = {:.2e}, {:.2}s)",
            report.status,
            report.system_size,
            report.num_unknowns,
            report.violation,
            report.stage_seconds("solve")
        );
        if report.status == ReportStatus::Synthesized {
            println!("synthesized post-condition(s):");
            for line in &report.postconditions {
                println!("  {line}");
            }
        }
    } else {
        // Fast path: cross-check the target with the concrete interpreter —
        // no sampled valid run may violate it. (Pass `--solve` for the full
        // Step-4 synthesis attempt.)
        let program = engine.parse_program(RECURSIVE_EXAMPLE_SOURCE)?;
        let pre = Precondition::from_program(&program);
        let mut claimed = InvariantMap::new();
        let (goal, _) = parse_assertion(&program, "rsum", TARGET)?;
        claimed.add(program.main().exit_label(), goal);
        let counterexample = falsify(&program, &pre, &claimed, 300, 11);
        println!(
            "falsification of the target over 300 sampled runs: {}",
            if counterexample.is_none() {
                "no counterexample (consistent with the paper's result)"
            } else {
                "counterexample found"
            }
        );
        assert!(counterexample.is_none());
    }
    Ok(())
}
