//! Dense-vs-sparse Step-4 comparison on a real Table 2 system.
//!
//! Builds the cohendiv quadratic system (|S| ≈ 4.4k, ≈ 4.3k unknowns, >99%
//! sparse), then times one Levenberg–Marquardt iteration both ways using
//! the shared probes of `polyinv_bench::probe`:
//!
//! * **sparse** — the production path: residuals + sparse Jacobian rows
//!   scattered straight into the `JᵀJ` pattern, damped sparse LDLᵀ
//!   factor-solve with the symbolic analysis computed once up front;
//! * **dense** — what the LM back-end did before the sparse rewrite:
//!   materialize the dense `m×n` Jacobian, its transpose, the dense `JᵀJ`
//!   product and an `O(n³)` Gaussian-elimination solve.
//!
//! Run with `cargo run --release --example solver_comparison`. On a typical
//! machine the sparse iteration is two orders of magnitude faster (~0.15 s
//! vs ~19 s) and works in O(nnz) ≈ 10 MB instead of several dense
//! `m×n`/`n×n` buffers (~0.5 GB). The criterion benches in
//! `crates/bench/benches/solver.rs` track the same probes continuously.

use std::time::Instant;

use polyinv_bench::probe::{dense_iteration, table_problem, SparseProbe};

fn main() {
    let problem = table_problem("cohendiv");
    let n = problem.num_vars;
    let m = problem.equalities.len() + problem.inequalities.len();
    println!("cohendiv: n = {n} unknowns, m = {m} residual rows");
    let x = vec![0.05; n];
    let lambda = 1e-3;

    let setup_start = Instant::now();
    let mut probe = SparseProbe::new(problem);
    println!(
        "symbolic setup (once per problem): {:.3}s; nnz(J) = {}, nnz(JtJ) = {}, nnz(L) = {}",
        setup_start.elapsed().as_secs_f64(),
        probe.nnz_jacobian(),
        probe.nnz_jtj(),
        probe.nnz_factor(),
    );

    let iterations = 10u32;
    let sparse_start = Instant::now();
    for _ in 0..iterations {
        std::hint::black_box(probe.iteration(&x, lambda));
    }
    let sparse_per_iter = sparse_start.elapsed() / iterations;
    println!(
        "sparse per-iteration: {:.4}s",
        sparse_per_iter.as_secs_f64()
    );

    let dense_start = Instant::now();
    std::hint::black_box(dense_iteration(probe.problem(), &x, lambda));
    let dense_per_iter = dense_start.elapsed();
    println!("dense per-iteration: {:.3}s", dense_per_iter.as_secs_f64());
    println!(
        "speedup: {:.0}x per LM iteration",
        dense_per_iter.as_secs_f64() / sparse_per_iter.as_secs_f64()
    );
}
