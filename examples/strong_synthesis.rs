//! Strong invariant synthesis through the Engine: enumerate a
//! representative set of distinct inductive invariants of a bounded counter
//! loop.
//!
//! ```text
//! cargo run --release --example strong_synthesis
//! ```

use polyinv_api::{Engine, SynthesisRequest};

fn main() -> Result<(), polyinv_api::ApiError> {
    let source = r#"
        counter(x) {
            @pre(x >= 0);
            while x <= 5 do
                x := x + 1
            od;
            return x
        }
    "#;
    let engine = Engine::new();
    let request = SynthesisRequest::strong(source)
        .with_degree(1)
        .with_attempts(6);
    let report = engine.run(&request)?;
    for note in &report.diagnostics {
        println!("{note}");
    }
    // Each line is prefixed with the index of the solution it belongs to.
    for line in &report.invariants {
        println!("{line}");
    }
    assert!(!report.invariants.is_empty());
    Ok(())
}
