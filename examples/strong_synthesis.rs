//! Strong invariant synthesis: enumerate a representative set of distinct
//! inductive invariants of a bounded counter loop.
//!
//! ```text
//! cargo run --release --example strong_synthesis
//! ```

use polyinv::prelude::*;
use polyinv::strong::StrongSynthesis;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = r#"
        counter(x) {
            @pre(x >= 0);
            while x <= 5 do
                x := x + 1
            od;
            return x
        }
    "#;
    let program = parse_program(source)?;
    let pre = Precondition::from_program(&program);

    let options = StrongOptions {
        synthesis: SynthesisOptions {
            degree: 1,
            ..SynthesisOptions::default()
        },
        attempts: 6,
        ..StrongOptions::default()
    };
    let solutions = StrongSynthesis::new(options).enumerate(&program, &pre);
    println!(
        "found {} distinct inductive invariant(s) for the counter loop",
        solutions.len()
    );
    for (index, solution) in solutions.iter().enumerate() {
        println!("--- invariant #{index} ---");
        print!("{}", solution.invariant.render(&program));
    }
    assert!(!solutions.is_empty());
    Ok(())
}
