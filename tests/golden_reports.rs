//! Golden snapshots: canonical-JSON `SynthesisReport`s for every
//! `programs/*.poly` scenario, compared byte-for-byte against
//! `tests/golden/<stem>.json`.
//!
//! The reports are generation-only runs (Steps 1–3) with the benchmark's
//! paper configuration (template size `n`, degree `d`) when the file
//! corresponds to a Table 2/3 row, and default options otherwise, with
//! timings zeroed through `SynthesisReport::canonical()` — so the bytes pin
//! `|S|`, unknown counts, stage structure, diagnostics and the JSON writer
//! itself across refactors.
//!
//! Regenerate after an intentional change with:
//!
//! ```text
//! POLYINV_REGEN_GOLDEN=1 cargo test --release -p polyinv-bench --test golden_reports
//! ```

use std::path::PathBuf;

use polyinv_api::{Engine, SynthesisRequest};
use polyinv_bench::options_for;

fn workspace_path(relative: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(relative)
}

fn golden_report_json(engine: &Engine, path: &PathBuf) -> String {
    let stem = path
        .file_stem()
        .and_then(|s| s.to_str())
        .expect("utf-8 stem")
        .to_string();
    let source = std::fs::read_to_string(path).expect("readable program");
    let mut request = SynthesisRequest::generate_only(source).with_id(stem.clone());
    if let Some(benchmark) = polyinv_benchmarks::by_name(&stem.replace('_', "-")) {
        request = request.with_options(options_for(&benchmark));
    }
    let report = engine
        .run(&request)
        .unwrap_or_else(|e| panic!("{stem}: generation failed: {e}"))
        .canonical();
    let mut text = report.to_json().pretty();
    text.push('\n');
    text
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "generation over all 29 scenarios is slow unoptimized; run with `cargo test --release`"
)]
fn golden_reports_are_byte_stable() {
    let regen = std::env::var("POLYINV_REGEN_GOLDEN").is_ok_and(|v| v == "1");
    let golden_dir = workspace_path("tests/golden");
    if regen {
        std::fs::create_dir_all(&golden_dir).expect("create golden dir");
    }

    let mut programs: Vec<PathBuf> = std::fs::read_dir(workspace_path("programs"))
        .expect("programs/ exists")
        .map(|entry| entry.expect("readable entry").path())
        .filter(|path| path.extension().and_then(|e| e.to_str()) == Some("poly"))
        .collect();
    programs.sort();
    assert!(programs.len() >= 29, "expected ≥ 29 programs");

    let engine = Engine::new();
    let mut mismatches = Vec::new();
    for path in &programs {
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap();
        let actual = golden_report_json(&engine, path);
        let golden_path = golden_dir.join(format!("{stem}.json"));
        if regen {
            std::fs::write(&golden_path, &actual).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {} ({e}); regenerate with POLYINV_REGEN_GOLDEN=1",
                golden_path.display()
            )
        });
        if actual != expected {
            mismatches.push(stem.to_string());
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden reports changed for {mismatches:?}; if intentional, regenerate with \
         POLYINV_REGEN_GOLDEN=1 cargo test --release -p polyinv-bench --test golden_reports"
    );
}

#[test]
fn golden_snapshots_parse_as_reports() {
    // Cheap structural guard that runs in debug too: every committed golden
    // parses back into a SynthesisReport with generation metrics.
    let golden_dir = workspace_path("tests/golden");
    let mut count = 0;
    for entry in std::fs::read_dir(&golden_dir).expect("tests/golden exists") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable golden");
        let report = polyinv_api::SynthesisReport::from_json_str(&text)
            .unwrap_or_else(|e| panic!("{} is not a report: {e}", path.display()));
        assert!(report.system_size > 0, "{}: empty system", path.display());
        assert_eq!(report.status, polyinv_api::ReportStatus::Generated);
        count += 1;
    }
    assert!(count >= 29, "expected ≥ 29 golden snapshots, found {count}");
}
