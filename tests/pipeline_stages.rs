//! End-to-end integration test of the staged pipeline: every paper step
//! runs as a named stage on the running example (Figure 2), the per-stage
//! artifacts are non-trivial, and the recorded timings cover every stage.

use std::collections::HashMap;
use std::time::Duration;

use polyinv::pipeline::{run_stage, stage_names, PairStage, ReductionStage, TemplateStage};
use polyinv::prelude::*;
use polyinv_api::{Engine, SynthesisRequest};
use polyinv_bench::options_for;
use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;

#[test]
fn staged_artifacts_on_the_running_example_are_non_trivial() {
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    let pipeline = Pipeline::default();
    let mut ctx = pipeline.context(&program, &pre);

    // Step 1: one template per label, 21 monomials each (Example 6).
    let templates = run_stage(&mut ctx, &TemplateStage, ());
    assert!(templates.num_invariant_templates() > 0);
    assert_eq!(templates.num_invariant_templates(), 9);
    assert!(templates.num_unknowns() >= 9 * 21);

    // Step 2: 11 constraint pairs (10 transitions + initiation).
    let pairs = run_stage(&mut ctx, &PairStage, &templates).unwrap();
    assert_eq!(pairs.len(), 11);

    // Step 3: a quadratic system of the paper's order of magnitude.
    let generated = run_stage(&mut ctx, &ReductionStage, (templates, pairs));
    assert!(generated.size() > 1_000);
    assert!(generated.size() < 50_000);

    // Every stage left a timing entry, in execution order.
    let stages: Vec<&str> = ctx.timings().iter().map(|(name, _)| name).collect();
    assert_eq!(
        stages,
        vec![
            stage_names::TEMPLATES,
            stage_names::PAIRS,
            stage_names::REDUCTION
        ]
    );
    assert!(ctx.timings().generation() > Duration::ZERO);
    // And a diagnostic line per stage.
    assert_eq!(ctx.diagnostics().len(), 3);
}

#[test]
fn recursive_sum_system_size_is_within_2x_of_the_paper() {
    // The paper reports |S| = 1700 for recursive-sum (Table 3).
    let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
    let program = benchmark.program().unwrap();
    let pre = benchmark.precondition().unwrap();
    let pipeline = Pipeline::new(options_for(&benchmark));
    let mut ctx = pipeline.context(&program, &pre);
    let generated = pipeline.generate(&mut ctx).unwrap();
    assert!(
        generated.recursive,
        "recursive-sum uses the recursive algorithm"
    );
    let paper_size = benchmark.paper.system_size;
    assert_eq!(paper_size, 1700);
    assert!(
        generated.size() >= paper_size / 2 && generated.size() <= paper_size * 2,
        "|S| = {} vs paper {paper_size}",
        generated.size()
    );
}

#[test]
fn solve_stage_runs_through_pluggable_backends() {
    // A trivially-strengthenable program keeps the solve cheap enough for
    // debug test runs.
    let source = r#"
        tick(x) {
            @pre(x >= 0);
            while x <= 2 do
                x := x + 1
            od;
            return x
        }
    "#;
    let program = parse_program(source).unwrap();
    let pre = Precondition::from_program(&program);
    let options = SynthesisOptions::default().with_degree(1).with_upsilon(0);
    for name in ["lm", "penalty"] {
        let backend = backend_by_name(name).unwrap();
        let pipeline = Pipeline::new(options.clone()).with_backend(backend);
        let mut ctx = pipeline.context(&program, &pre);
        let generated = pipeline.generate(&mut ctx).unwrap();
        let solution = pipeline.solve(&mut ctx, &generated, HashMap::new(), None);
        assert_eq!(solution.backend, name);
        assert_eq!(solution.assignment.len(), generated.system.num_unknowns());
        assert!(ctx.timings().solve() > Duration::ZERO);
        // The solve stage added its diagnostic after the generation ones.
        assert!(ctx
            .diagnostics()
            .last()
            .unwrap()
            .starts_with(&format!("solve[{name}]")));
    }
}

#[test]
fn engine_generation_reports_the_stage_breakdown() {
    let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
    let engine = Engine::new();
    let report = engine
        .run(
            &SynthesisRequest::generate_only(benchmark.source)
                .with_options(options_for(&benchmark)),
        )
        .unwrap();
    assert!(report.system_size > 0);
    for stage in [
        stage_names::TEMPLATES,
        stage_names::PAIRS,
        stage_names::REDUCTION,
    ] {
        assert!(
            report.stage_seconds(stage) > 0.0,
            "stage {stage} not recorded"
        );
    }
    assert_eq!(report.stage_seconds(stage_names::SOLVE), 0.0);
}
