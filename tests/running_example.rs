//! End-to-end integration test on the paper's running example (Figure 2):
//! front-end → CFG → reduction → certificate checking → falsification.

use polyinv::prelude::*;
use polyinv_lang::cfg::Cfg;
use polyinv_lang::program::RUNNING_EXAMPLE_SOURCE;

fn margin_aware_invariant(program: &polyinv_lang::Program) -> InvariantMap {
    let labels = program.main().labels().to_vec();
    let parse = |text: &str| parse_assertion(program, "sum", text).unwrap().0;
    let mut invariant = InvariantMap::new();
    invariant.add(labels[0], parse("n > 0"));
    for (index, (i_term, combined)) in [
        ("8*i - 7", "4*i + 4*s - 3"),
        ("4*i - 3", "4*i + 4*s + 1"),
        ("4*i - 2", "4*i + 4*s + 2"),
        ("4*i - 1", "4*i + 4*s + 3"),
        ("4*i - 1", "4*i + 4*s + 3"),
        ("4*i - 0", "4*i + 4*s + 4"),
        ("4*i - 2", "4*i + 4*s + 2"),
        ("4*i - 1", "4*i + 4*s + 3"),
    ]
    .iter()
    .enumerate()
    {
        invariant.add(labels[index + 1], parse(&format!("{i_term} > 0")));
        invariant.add(labels[index + 1], parse(&format!("{combined} > 0")));
    }
    invariant
}

#[test]
fn figure_2_program_has_the_paper_structure() {
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    // 9 labels (Figure 2) and 10 CFG transitions (Figure 3).
    assert_eq!(program.main().labels().len(), 9);
    assert_eq!(Cfg::build(&program).len(), 10);
    // V^sum = {n, n̄, i, s, ret_sum} (Example 6).
    assert_eq!(program.main().vars().len(), 5);
}

#[test]
fn reduction_matches_example_6_template_counts() {
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    let generated =
        polyinv_constraints::generate(&program, &pre, &SynthesisOptions::default()).unwrap();
    // Example 6: 21 monomials of degree ≤ 2 per label template.
    let entry = program.main().entry_label();
    assert_eq!(generated.templates.invariant(entry).basis.len(), 21);
    // 11 constraint pairs: one per transition plus initiation.
    assert_eq!(generated.pairs.len(), 11);
    // The quadratic system is non-trivial and within the paper's order of
    // magnitude for similarly-sized benchmarks.
    assert!(generated.size() > 1_000);
    assert!(generated.size() < 50_000);
}

#[test]
fn hand_written_strengthening_is_certified_and_not_falsified() {
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    let invariant = margin_aware_invariant(&program);
    let report = check_inductive(
        &program,
        &pre,
        &invariant,
        &Postcondition::new(),
        &CheckOptions::default(),
    )
    .unwrap();
    assert!(report.all_certified(), "failures: {:?}", report.failures());
    assert!(falsify(&program, &pre, &invariant, 150, 3).is_none());
}

#[test]
fn the_papers_endpoint_assertion_survives_extensive_falsification() {
    // Appendix B.1 target: ret_sum < 0.5·n̄² + 0.5·n̄ + 1 at label 9.
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    let exit = program.main().exit_label();
    let (goal, _) =
        parse_assertion(&program, "sum", "0.5*n_in*n_in + 0.5*n_in + 1 - ret > 0").unwrap();
    let mut claimed = InvariantMap::new();
    claimed.add(exit, goal);
    assert!(falsify(&program, &pre, &claimed, 400, 17).is_none());
}

#[test]
fn corrupted_strengthenings_are_rejected() {
    let program = parse_program(RUNNING_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    let labels = program.main().labels().to_vec();
    // Claim that s stays below 1 at the return statement: wrong.
    let (wrong, _) = parse_assertion(&program, "sum", "1 - s > 0").unwrap();
    let mut invariant = margin_aware_invariant(&program);
    invariant.add(labels[7], wrong);
    let report = check_inductive(
        &program,
        &pre,
        &invariant,
        &Postcondition::new(),
        &CheckOptions::default(),
    )
    .unwrap();
    assert!(!report.all_certified());
    assert!(falsify(&program, &pre, &invariant, 300, 5).is_some());
}
