//! Integration tests running the reduction over the benchmark suite and the
//! baseline, checking the "shape" properties reported in the paper's tables.

use polyinv::prelude::*;
use polyinv::weak::{fix_targets, SynthesisStatus, TargetAssertion};
use polyinv_benchmarks::{by_name, table2, table3, Benchmark, Category};
use polyinv_constraints::{presolve, PresolveOptions, PresolvedSystem};
use polyinv_farkas::{FarkasBaseline, Inapplicability};

#[test]
fn small_table2_benchmarks_generate_systems_of_paper_scale() {
    // Generation (Steps 1-3) for a representative subset; the full sweep is
    // done by the `reproduce` binary and the Criterion benches.
    for name in ["sqrt", "freire1", "petter", "cohendiv", "mannadiv"] {
        let benchmark = by_name(name).unwrap();
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let options = SynthesisOptions::with_degree_and_size(benchmark.paper.d, benchmark.paper.n);
        let generated = polyinv_constraints::generate(&program, &pre, &options).unwrap();
        // Same order of magnitude as the paper's |S| (our encoding counts a
        // few more variables per benchmark — shadow parameters, return
        // variables and sequentialization temporaries — which inflates the
        // monomial bases; see EXPERIMENTS.md).
        assert!(
            generated.size() >= benchmark.paper.system_size / 20
                && generated.size() <= benchmark.paper.system_size * 20,
            "{name}: |S| = {} vs paper {}",
            generated.size(),
            benchmark.paper.system_size
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with `cargo test --release`"
)]
fn benchmark_difficulty_ordering_is_preserved() {
    // The paper's largest Table 2 system (euclidex3) must also be our
    // largest among a sample, and the smallest (cohendiv, d=1) our smallest.
    let sizes: Vec<(String, usize)> = ["cohendiv", "sqrt", "euclidex3"]
        .iter()
        .map(|name| {
            let benchmark = by_name(name).unwrap();
            let program = benchmark.program().unwrap();
            let pre = benchmark.precondition().unwrap();
            let options =
                SynthesisOptions::with_degree_and_size(benchmark.paper.d, benchmark.paper.n);
            (
                name.to_string(),
                polyinv_constraints::generate(&program, &pre, &options)
                    .unwrap()
                    .size(),
            )
        })
        .collect();
    assert!(sizes[0].1 < sizes[2].1, "{sizes:?}");
    assert!(sizes[1].1 < sizes[2].1, "{sizes:?}");
}

#[test]
fn every_benchmark_has_consistent_metadata() {
    for benchmark in table2().iter().chain(table3().iter()) {
        let program = benchmark.program().unwrap();
        if benchmark.category == Category::Recursive {
            // The recursive block contains recursive programs (except the
            // RL block which is single-loop by construction).
        } else if benchmark.category == Category::NonRecursive {
            assert!(program.is_simple(), "{} should be simple", benchmark.name);
        }
        // Targets must be representable within the configured degree.
        if let Some(target) = benchmark.target_polynomial(&program).unwrap() {
            assert!(
                target.degree() <= benchmark.paper.d.max(2) + 2,
                "{}: target degree {}",
                benchmark.name,
                target.degree()
            );
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with `cargo test --release`"
)]
#[allow(deprecated)] // exercises the driver layer beneath the Engine
fn weak_synthesis_closes_a_small_linear_benchmark() {
    // End-to-end Steps 1-4 on a small bounded-counter program: the local
    // solver reliably closes lower-bound style targets of this size.
    let source = r#"
        clamp(x) {
            @pre(x >= 0 && 10 >= x);
            y := 0;
            while y < x do
                y := y + 1
            od;
            return y
        }
    "#;
    let program = parse_program(source).unwrap();
    let pre = Precondition::from_program(&program);
    let exit = program.main().exit_label();
    let (target, _) = parse_assertion(&program, "clamp", "y + 1 - ret > 0").unwrap();
    let synth = WeakSynthesis::with_options(SynthesisOptions::default().with_degree(1));
    let outcome = synth
        .synthesize(&program, &pre, &[TargetAssertion::new(exit, target)])
        .unwrap();
    assert_eq!(
        outcome.status,
        SynthesisStatus::Synthesized,
        "violation {:.3e}",
        outcome.violation
    );
    // Any synthesized invariant must survive falsification.
    assert!(falsify(&program, &pre, &outcome.invariant, 200, 23).is_none());
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with `cargo test --release`"
)]
fn synthesized_reports_carry_a_passing_exact_certificate() {
    // The orchestrator's acceptance criterion end-to-end: a report may only
    // say `synthesized` when the snapped candidate passed the
    // exact-rational inductiveness re-check, and the validation record's
    // exact block is that same certificate.
    let benchmark = by_name("pw2").unwrap();
    let mut request = polyinv_api::SynthesisRequest::weak(benchmark.source)
        .with_id("pw2/e2e-certificate")
        .with_options(polyinv_bench::options_for(&benchmark));
    if let Some(target) = benchmark.target {
        request = request.with_target(target);
    }
    let report =
        polyinv_validate::run_validated(&request, &polyinv_validate::ValidationConfig::default())
            .unwrap();
    assert_eq!(
        report.status,
        polyinv_api::ReportStatus::Synthesized,
        "diagnostics: {:?}",
        report.diagnostics
    );
    let orchestrator = report
        .orchestrator
        .as_ref()
        .expect("weak reports carry the ladder record");
    assert!(
        orchestrator.certified,
        "synthesized without a certificate: {orchestrator:?}"
    );
    assert!(!orchestrator.history.is_empty());
    let validate = report.validate.as_ref().expect("validation ran");
    let exact = validate
        .exact
        .as_ref()
        .expect("synthesized rows carry the exact re-check");
    assert!(exact.passed, "certificate did not pass: {exact:?}");
}

#[test]
fn farkas_baseline_rejects_polynomial_benchmarks_but_handles_linear_ones() {
    // The Table-1 comparison: Colón et al. 2003 cannot handle the polynomial
    // benchmarks the paper targets.
    let cohencu = by_name("cohencu").unwrap();
    let program = cohencu.program().unwrap();
    // cohencu is linear in its updates, so pick one that is genuinely
    // polynomial: prod4br multiplies variables.
    let prod4br = by_name("prod4br").unwrap();
    let poly_program = prod4br.program().unwrap();
    assert!(matches!(
        FarkasBaseline::default().check_applicable(&poly_program),
        Err(Inapplicability::NonLinearAssignment { .. })
    ));
    // The linear ones are accepted and produce smaller systems than Putinar.
    let pre = Precondition::from_program(&program);
    if FarkasBaseline::default().check_applicable(&program).is_ok() {
        let farkas = FarkasBaseline::default().generate(&program, &pre).unwrap();
        let putinar =
            polyinv_constraints::generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        assert!(farkas.size() < putinar.size());
    }
}

/// Generates a benchmark's ϒ = 0 system (the ladder rung Step 4 attempts
/// first), pins its exit target when it has one, and presolves it — the
/// exact input the pipeline's presolve stage sees.
fn presolve_first_rung(benchmark: &Benchmark) -> PresolvedSystem {
    let program = benchmark.program().unwrap();
    let pre = benchmark.precondition().unwrap();
    let mut options = SynthesisOptions::with_degree_and_size(benchmark.paper.d, benchmark.paper.n);
    let targets = match benchmark.target_polynomial(&program).unwrap() {
        Some(target) => {
            options.degree = options.degree.max(target.degree());
            vec![TargetAssertion::new(program.main().exit_label(), target)]
        }
        None => Vec::new(),
    };
    let generated =
        polyinv_constraints::generate(&program, &pre, &options.with_upsilon(0)).unwrap();
    let pins = fix_targets(&generated, &targets);
    presolve(&generated.system, &pins, &PresolveOptions::default())
}

#[test]
fn presolve_shrinks_cohendiv_by_at_least_forty_percent() {
    // The headline acceptance bar of the presolve engine: the paper solves
    // cohendiv with |S| = 512; our ϒ = 0 generated system has 860 rows
    // before presolve and must land at or under 60% of that.
    let result = presolve_first_rung(&by_name("cohendiv").unwrap());
    let stats = &result.stats;
    assert!(
        stats.size_reduction() >= 0.40,
        "cohendiv presolve reduction regressed: |S| {} -> {} ({:.1}%)",
        stats.size_before,
        stats.size_after,
        100.0 * stats.size_reduction()
    );
    assert!(
        stats.unknowns_after < stats.unknowns_before,
        "cohendiv presolve eliminated no unknowns"
    );
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with `cargo test --release`"
)]
fn presolve_never_grows_any_benchmark_system() {
    // Every Table 2/3 row: presolve is monotone in |S| and unknown count,
    // and its bookkeeping is consistent with the surviving system.
    for benchmark in table2().iter().chain(table3().iter()) {
        let result = presolve_first_rung(benchmark);
        let stats = &result.stats;
        assert!(
            stats.size_after <= stats.size_before,
            "{}: presolve grew |S| {} -> {}",
            benchmark.name,
            stats.size_before,
            stats.size_after
        );
        assert!(
            stats.unknowns_after <= stats.unknowns_before,
            "{}: presolve grew unknowns {} -> {}",
            benchmark.name,
            stats.unknowns_before,
            stats.unknowns_after
        );
        assert_eq!(
            stats.size_after,
            result.system.size(),
            "{}: stats disagree with the presolved system",
            benchmark.name
        );
    }
}

#[test]
fn recursive_benchmarks_are_treated_recursively() {
    for name in ["recursive-sum", "pw2"] {
        let benchmark = by_name(name).unwrap();
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let options = SynthesisOptions::with_degree_and_size(benchmark.paper.d, benchmark.paper.n);
        let generated = polyinv_constraints::generate(&program, &pre, &options).unwrap();
        assert!(
            generated.recursive,
            "{name} must use the recursive algorithm"
        );
        assert!(
            generated
                .templates
                .postcondition(program.main().name())
                .is_some(),
            "{name} must get a post-condition template"
        );
    }
}
