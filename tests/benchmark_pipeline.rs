//! Integration tests running the reduction over the benchmark suite and the
//! baseline, checking the "shape" properties reported in the paper's tables.

use polyinv::prelude::*;
use polyinv::weak::{SynthesisStatus, TargetAssertion};
use polyinv_benchmarks::{by_name, table2, table3, Category};
use polyinv_farkas::{FarkasBaseline, Inapplicability};

#[test]
fn small_table2_benchmarks_generate_systems_of_paper_scale() {
    // Generation (Steps 1-3) for a representative subset; the full sweep is
    // done by the `reproduce` binary and the Criterion benches.
    for name in ["sqrt", "freire1", "petter", "cohendiv", "mannadiv"] {
        let benchmark = by_name(name).unwrap();
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let options = SynthesisOptions::with_degree_and_size(benchmark.paper.d, benchmark.paper.n);
        let generated = polyinv_constraints::generate(&program, &pre, &options).unwrap();
        // Same order of magnitude as the paper's |S| (our encoding counts a
        // few more variables per benchmark — shadow parameters, return
        // variables and sequentialization temporaries — which inflates the
        // monomial bases; see EXPERIMENTS.md).
        assert!(
            generated.size() >= benchmark.paper.system_size / 20
                && generated.size() <= benchmark.paper.system_size * 20,
            "{name}: |S| = {} vs paper {}",
            generated.size(),
            benchmark.paper.system_size
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with `cargo test --release`"
)]
fn benchmark_difficulty_ordering_is_preserved() {
    // The paper's largest Table 2 system (euclidex3) must also be our
    // largest among a sample, and the smallest (cohendiv, d=1) our smallest.
    let sizes: Vec<(String, usize)> = ["cohendiv", "sqrt", "euclidex3"]
        .iter()
        .map(|name| {
            let benchmark = by_name(name).unwrap();
            let program = benchmark.program().unwrap();
            let pre = benchmark.precondition().unwrap();
            let options =
                SynthesisOptions::with_degree_and_size(benchmark.paper.d, benchmark.paper.n);
            (
                name.to_string(),
                polyinv_constraints::generate(&program, &pre, &options)
                    .unwrap()
                    .size(),
            )
        })
        .collect();
    assert!(sizes[0].1 < sizes[2].1, "{sizes:?}");
    assert!(sizes[1].1 < sizes[2].1, "{sizes:?}");
}

#[test]
fn every_benchmark_has_consistent_metadata() {
    for benchmark in table2().iter().chain(table3().iter()) {
        let program = benchmark.program().unwrap();
        if benchmark.category == Category::Recursive {
            // The recursive block contains recursive programs (except the
            // RL block which is single-loop by construction).
        } else if benchmark.category == Category::NonRecursive {
            assert!(program.is_simple(), "{} should be simple", benchmark.name);
        }
        // Targets must be representable within the configured degree.
        if let Some(target) = benchmark.target_polynomial(&program).unwrap() {
            assert!(
                target.degree() <= benchmark.paper.d.max(2) + 2,
                "{}: target degree {}",
                benchmark.name,
                target.degree()
            );
        }
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow without optimizations; run with `cargo test --release`"
)]
#[allow(deprecated)] // exercises the driver layer beneath the Engine
fn weak_synthesis_closes_a_small_linear_benchmark() {
    // End-to-end Steps 1-4 on a small bounded-counter program: the local
    // solver reliably closes lower-bound style targets of this size.
    let source = r#"
        clamp(x) {
            @pre(x >= 0 && 10 >= x);
            y := 0;
            while y < x do
                y := y + 1
            od;
            return y
        }
    "#;
    let program = parse_program(source).unwrap();
    let pre = Precondition::from_program(&program);
    let exit = program.main().exit_label();
    let (target, _) = parse_assertion(&program, "clamp", "y + 1 - ret > 0").unwrap();
    let synth = WeakSynthesis::with_options(SynthesisOptions::default().with_degree(1));
    let outcome = synth
        .synthesize(&program, &pre, &[TargetAssertion::new(exit, target)])
        .unwrap();
    assert_eq!(
        outcome.status,
        SynthesisStatus::Synthesized,
        "violation {:.3e}",
        outcome.violation
    );
    // Any synthesized invariant must survive falsification.
    assert!(falsify(&program, &pre, &outcome.invariant, 200, 23).is_none());
}

#[test]
fn farkas_baseline_rejects_polynomial_benchmarks_but_handles_linear_ones() {
    // The Table-1 comparison: Colón et al. 2003 cannot handle the polynomial
    // benchmarks the paper targets.
    let cohencu = by_name("cohencu").unwrap();
    let program = cohencu.program().unwrap();
    // cohencu is linear in its updates, so pick one that is genuinely
    // polynomial: prod4br multiplies variables.
    let prod4br = by_name("prod4br").unwrap();
    let poly_program = prod4br.program().unwrap();
    assert!(matches!(
        FarkasBaseline::default().check_applicable(&poly_program),
        Err(Inapplicability::NonLinearAssignment { .. })
    ));
    // The linear ones are accepted and produce smaller systems than Putinar.
    let pre = Precondition::from_program(&program);
    if FarkasBaseline::default().check_applicable(&program).is_ok() {
        let farkas = FarkasBaseline::default().generate(&program, &pre).unwrap();
        let putinar =
            polyinv_constraints::generate(&program, &pre, &SynthesisOptions::default()).unwrap();
        assert!(farkas.size() < putinar.size());
    }
}

#[test]
fn recursive_benchmarks_are_treated_recursively() {
    for name in ["recursive-sum", "pw2"] {
        let benchmark = by_name(name).unwrap();
        let program = benchmark.program().unwrap();
        let pre = benchmark.precondition().unwrap();
        let options = SynthesisOptions::with_degree_and_size(benchmark.paper.d, benchmark.paper.n);
        let generated = polyinv_constraints::generate(&program, &pre, &options).unwrap();
        assert!(
            generated.recursive,
            "{name} must use the recursive algorithm"
        );
        assert!(
            generated
                .templates
                .postcondition(program.main().name())
                .is_some(),
            "{name} must get a post-condition template"
        );
    }
}
