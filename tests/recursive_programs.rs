//! Integration tests for the recursive fragment: abstract-path constraint
//! pairs, post-condition templates and the interpreter on recursive
//! programs.

use polyinv::prelude::*;
use polyinv_arith::Rational;
use polyinv_constraints::pairs::PairKind;
use polyinv_lang::interp::{Interpreter, NondetOracle, SeededOracle};
use polyinv_lang::program::RECURSIVE_EXAMPLE_SOURCE;

struct AlwaysAdd;
impl NondetOracle for AlwaysAdd {
    fn choose(&mut self) -> bool {
        true
    }
    fn havoc(&mut self) -> Rational {
        Rational::zero()
    }
}

#[test]
fn figure_4_reduction_produces_call_and_post_condition_pairs() {
    let program = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
    let pre = Precondition::from_program(&program);
    let generated =
        polyinv_constraints::generate(&program, &pre, &SynthesisOptions::default()).unwrap();
    assert!(generated.recursive);
    let call_pairs = generated
        .pairs
        .iter()
        .filter(|p| p.kind == PairKind::CallConsecution)
        .count();
    let post_pairs = generated
        .pairs
        .iter()
        .filter(|p| p.kind == PairKind::PostConsecution)
        .count();
    assert_eq!(call_pairs, 1, "one recursive call site");
    assert_eq!(post_pairs, 2, "two return statements");
    // The µ(rsum) template of Example 11 has 6 monomials.
    assert_eq!(
        generated
            .templates
            .postcondition("rsum")
            .unwrap()
            .basis
            .len(),
        6
    );
}

#[test]
fn recursive_interpreter_matches_the_closed_form() {
    let program = parse_program(RECURSIVE_EXAMPLE_SOURCE).unwrap();
    let interpreter = Interpreter::new(&program, 100_000);
    for n in 0..10i64 {
        let trace = interpreter.run(&[Rational::from_int(n)], &mut AlwaysAdd);
        assert_eq!(
            trace.return_value,
            Some(Rational::from_int(n * (n + 1) / 2)),
            "rsum({n})"
        );
    }
}

#[test]
fn paper_target_for_recursive_sum_is_never_falsified() {
    let benchmark = polyinv_benchmarks::by_name("recursive-sum").unwrap();
    let program = benchmark.program().unwrap();
    let pre = benchmark.precondition().unwrap();
    let target = benchmark.target_polynomial(&program).unwrap().unwrap();
    let mut claimed = InvariantMap::new();
    claimed.add(program.main().exit_label(), target);
    assert!(falsify(&program, &pre, &claimed, 300, 29).is_none());
}

#[test]
fn merge_sort_inversion_bound_holds_on_sampled_runs() {
    // The Appendix B.2 merge-sort returns the number of inversions, bounded
    // by C(k, 2) for a range of length k; our havoc-based floor model must
    // preserve that bound on valid runs.
    let benchmark = polyinv_benchmarks::by_name("merge-sort").unwrap();
    let program = benchmark.program().unwrap();
    let pre = benchmark.precondition().unwrap();
    let target = benchmark.target_polynomial(&program).unwrap().unwrap();
    let mut claimed = InvariantMap::new();
    claimed.add(program.main().exit_label(), target);
    assert!(falsify(&program, &pre, &claimed, 120, 31).is_none());
}

#[test]
fn pw2_supports_multiple_conjuncts_per_label() {
    // The pw2 row of Table 3 uses n = 2 assertions per label.
    let benchmark = polyinv_benchmarks::by_name("pw2").unwrap();
    let program = benchmark.program().unwrap();
    let pre = benchmark.precondition().unwrap();
    let options = SynthesisOptions::with_degree_and_size(1, 2);
    let generated = polyinv_constraints::generate(&program, &pre, &options).unwrap();
    let entry = program.main().entry_label();
    assert_eq!(generated.templates.invariant(entry).conjuncts.len(), 2);
    // Interpreter sanity: pw2 returns the largest power of two ≤ x.
    let interpreter = Interpreter::new(&program, 100_000);
    let mut oracle = SeededOracle::new(1, 1);
    for (input, expected) in [(1i64, 1i64), (2, 2), (3, 2), (9, 8), (16, 16), (31, 16)] {
        let trace = interpreter.run(&[Rational::from_int(input)], &mut oracle);
        assert_eq!(trace.return_value, Some(Rational::from_int(expected)));
    }
}
