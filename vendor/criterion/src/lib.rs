//! A minimal, dependency-free stand-in for the `criterion` bench harness.
//!
//! The workspace builds without network access, so the slice of the
//! criterion API used by `crates/bench/benches/` is vendored here:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! [`BenchmarkGroup::measurement_time`] / [`BenchmarkGroup::bench_function`],
//! [`Bencher::iter`] and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical analysis it reports the
//! minimum, mean and maximum wall-clock time over the configured number of
//! samples — enough to compare pipeline stages against each other.

use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// The top-level harness handle passed to bench functions.
#[derive(Debug, Default)]
pub struct Criterion {
    filter: Option<String>,
}

impl Criterion {
    /// Honors a substring filter passed on the command line
    /// (`cargo bench -- <filter>`), ignoring harness flags.
    pub fn configure_from_args(mut self) -> Self {
        self.filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            criterion: self,
        }
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_ref().is_none_or(|f| id.contains(f.as_str()))
    }
}

/// A group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        let deadline = Instant::now() + self.measurement_time;
        // One untimed warm-up pass, then up to `sample_size` timed samples
        // within the measurement budget (always at least one).
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
            if Instant::now() >= deadline {
                break;
            }
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{full:<50} time: [{:>10.4?} {:>10.4?} {:>10.4?}]  ({} samples)",
            min,
            mean,
            max,
            samples.len()
        );
        self
    }

    /// Ends the group (retained for criterion API compatibility).
    pub fn finish(self) {}
}

/// Hint for how batched inputs are grouped (accepted for criterion API
/// compatibility; the shim always uses one input per sample).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: batch many per allocation in real criterion.
    SmallInput,
    /// Large inputs: fewer per batch in real criterion.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// The per-benchmark timing handle.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one execution of `routine` (called once per sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
    }

    /// Times `routine` on an input produced by `setup`; only the routine is
    /// measured, so per-iteration setup (clones, context rebuilds) stays out
    /// of the reported numbers.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        self.elapsed += start.elapsed();
    }
}

/// Declares a group function running each listed benchmark in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares the bench `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_their_benchmarks() {
        let mut criterion = Criterion::default();
        let mut calls = 0;
        let mut group = criterion.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(200));
        group.bench_function("counting", |b| b.iter(|| calls += 1));
        group.finish();
        // warm-up + up to 3 samples
        assert!(calls >= 2);
    }

    #[test]
    fn filter_skips_non_matching_benchmarks() {
        let mut criterion = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut calls = 0;
        let mut group = criterion.benchmark_group("shim");
        group.bench_function("skipped", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 0);
    }
}
