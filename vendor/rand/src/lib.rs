//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The workspace builds in environments without network access, so the
//! small slice of the `rand` API used by the solvers is vendored here:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, which is all the
//! multi-start solvers require (statistical quality far beyond that of a
//! hash is irrelevant here).

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from an integer seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for sampling values, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Samples a value uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the
            // xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<f64> = (0..8).map(|_| a.random_range(-1.0..1.0)).collect();
        let ys: Vec<f64> = (0..8).map(|_| b.random_range(-1.0..1.0)).collect();
        let zs: Vec<f64> = (0..8).map(|_| c.random_range(-1.0..1.0)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn float_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.random_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x: usize = rng.random_range(0..5usize);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets should be hit");
    }
}
