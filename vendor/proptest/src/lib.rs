//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so the slice of the
//! proptest API used by the property tests is vendored here: range and
//! tuple [`Strategy`]s, [`Strategy::prop_map`], [`collection::vec`], the
//! [`proptest!`] macro and the `prop_assert*` / `prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of deterministically-seeded cases and reports the first failing
//! input via the standard assertion panic message.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::RngExt;

/// The per-test case generator handed to strategies.
pub type TestRng = StdRng;

/// Creates the deterministic per-test generator (used by [`proptest!`]).
pub fn new_test_rng(seed: u64) -> TestRng {
    use rand::SeedableRng;
    TestRng::seed_from_u64(seed)
}

/// Test-runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty => $via:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.random_range(0u64..u64::MAX) as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i32 => i64, i64 => i64, i128 => i128, u32 => i64, usize => i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.start..self.end)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;
    use std::ops::Range;

    /// The number of elements a [`vec`] strategy may produce.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        end: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.end > self.size.start + 1 {
                rng.random_range(self.size.start..self.size.end)
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values drawn from `element`, with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The usual glob-import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (no shrinking; plain panic).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministically-seeded
/// random cases.
#[macro_export]
macro_rules! proptest {
    (@config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng =
                    $crate::new_test_rng(0x70726f70u64 ^ stringify!($name).len() as u64);
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)*
                    #[allow(unused_mut)]
                    let mut case = move || $body;
                    case();
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@config ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5i64..6, y in 0u32..3) {
            prop_assert!((-5..6).contains(&x));
            prop_assert!(y < 3);
        }

        #[test]
        fn mapped_strategies_apply_the_function(x in (0i64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 20);
        }

        #[test]
        fn assume_skips_cases(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn vec_strategy_respects_sizes(xs in prop::collection::vec(0i64..5, 3), ys in prop::collection::vec(0i64..5, 0..4)) {
            prop_assert_eq!(xs.len(), 3);
            prop_assert!(ys.len() < 4);
        }
    }
}
